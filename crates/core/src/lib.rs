//! Synthesis of lexicographic linear ranking functions using extremal
//! counterexamples — the **Termite** algorithm (Gonnord, Monniaux, Radanne,
//! PLDI 2015).
//!
//! # Overview
//!
//! Given a program whose transition relation between a cut-set of control
//! points is a linear-arithmetic formula with disjunctions and existentials
//! (the large-block encoding of `termite-ir`), and supporting invariants at
//! each cut point (from `termite-invariants`), this crate synthesises a
//! lexicographic linear ranking function proving termination — or reports
//! that none exists relative to the given invariants.
//!
//! The algorithm is the paper's counterexample-guided construction:
//!
//! * a candidate `ρ(k, x) = λ_k·x + λ_{k,0}` is maintained as a non-negative
//!   combination of the invariant constraints (Farkas form), so non-negativity
//!   is guaranteed by construction;
//! * an optimizing SMT solver searches for an **extremal counterexample** — a
//!   transition on which the candidate fails to decrease, with `λ·u`
//!   (`u = e_k(x) − e_k'(x')`) minimised so the witness lies on the boundary
//!   of the convex hull of one-step differences, or a **ray** when the
//!   objective is unbounded (Example 3 of the paper);
//! * each counterexample adds one row to a small LP
//!   (`LP(C, Constraints(I))`, Definition 11) whose optimum is a quasi
//!   ranking function of **maximal termination power** (Definition 10);
//! * directions on which every quasi ranking function is flat are collected in
//!   a subspace `B`, and the SMT query is constrained by `AvoidSpace(u, B)` so
//!   the loop terminates even when no strict ranking function exists;
//! * the monodimensional procedure (Algorithm 1/3) is iterated per dimension
//!   (Algorithm 2), restricting at each level to the transitions left constant
//!   by the previous components, yielding a lexicographic function of minimal
//!   dimension.
//!
//! Two baselines from the paper's evaluation are provided for comparison (see
//! [`Engine`]): the **eager** Farkas/DNF approach of Rank / Alias et al.
//! (`baselines::eager`) and a syntactic **heuristic** prover in the spirit of
//! Loopus (`baselines::heuristic`), plus the Podelski–Rybalchenko
//! single-ranking-function special case.
//!
//! # Quickstart
//!
//! ```
//! use termite_core::{prove_termination, AnalysisOptions};
//! use termite_ir::parse_program;
//!
//! let program = parse_program(r#"
//!     var x, y;
//!     assume x == 5 && y == 10;
//!     while (true) {
//!         choice {
//!             assume x <= 10 && y >= 0; x = x + 1; y = y - 1;
//!         } or {
//!             assume x >= 0 && y >= 0;  x = x - 1; y = y - 1;
//!         }
//!     }
//! "#).unwrap();
//! let report = prove_termination(&program, &AnalysisOptions::default());
//! assert!(report.proved());
//! let rf = report.ranking_function().unwrap();
//! assert_eq!(rf.dimension(), 1);   // ρ(x, y) = y + 1 suffices (Example 1)
//! ```

#![deny(missing_docs)]

mod baselines;
mod cancel;
pub mod complete;
mod engine;
pub mod lasso;
mod lp_instance;
mod monodim;
mod multidim;
pub mod piecewise;
mod regions;
mod report;
mod workspace;

pub use baselines::{eager, heuristic, podelski_rybalchenko};
pub use cancel::CancelToken;
pub use engine::{
    prove_termination, prove_transition_system, prove_with_pipeline, AnalysisOptions, Engine,
};
pub use lp_instance::{
    solve_lp_instance, LpInstanceSolution, LpInstanceStats, RankingTemplate, StackedConstraints,
};
pub use monodim::{monodim, MonodimInput, MonodimResult};
pub use multidim::{synthesize_lexicographic, LexOutcome};
pub use regions::{
    active_source_invariants, active_source_regions, enabled_invariants, source_region_approx,
    strengthen_with_regions,
};
pub use report::{
    Precondition, RankingFunction, SynthesisStats, TerminationReport, UnknownReason, Verdict,
};
pub use workspace::{FarkasMemo, LpReuse, SynthesisLpWorkspace};
