//! Property tests for the conditional-termination pipeline: verdicts are
//! checked against *bounded concrete simulation* of the node-level CFG, and
//! the backward precondition propagation is checked against the forward
//! analysis on `assume`-constrained programs.
//!
//! The simulator is demonic where the semantics is: every enabled guard edge
//! and every havoc value (from a small probe set) is explored, so one
//! diverging exploration falsifies a termination claim. An execution that
//! gets stuck (no enabled edge — e.g. a failing in-loop `assume`) has
//! terminated.

use proptest::prelude::*;
use termite_core::{
    complete, monodim, prove_termination, AnalysisOptions, CancelToken, Engine, FarkasMemo,
    LpReuse, MonodimInput, SynthesisLpWorkspace, SynthesisStats, UnknownReason, Verdict,
};
use termite_invariants::{analyze_cfg, entry_precondition, InvariantOptions};
use termite_ir::{parse_program, Cfg, CfgOp};
use termite_linalg::QVector;
use termite_num::Rational;
use termite_polyhedra::Polyhedron;

/// Steps of CFG edge-walking each exploration may take. The sampled start
/// states live in a small box, and every template family strictly decreases
/// a sampled variable by ≥ 1 per loop iteration (a handful of edges each),
/// so genuine terminating runs finish well under this budget.
const FUEL: usize = 400;

/// Havoc probe values: a diverging havocked program almost always diverges
/// under one of these already.
const HAVOC_CHOICES: [i64; 5] = [-3, -1, 0, 1, 3];

/// `true` iff every explored execution from `state` at `node` halts (reaches
/// the exit or gets stuck) within `fuel` edge steps.
fn halts(cfg: &Cfg, node: usize, state: &QVector, fuel: usize) -> bool {
    if node == cfg.exit() {
        return true;
    }
    if fuel == 0 {
        return false;
    }
    cfg.successors(node).all(|edge| match &edge.op {
        CfgOp::Guard(cs) => {
            // A disabled guard edge contributes no execution.
            !cs.iter().all(|c| c.satisfied_by(state)) || halts(cfg, edge.to, state, fuel - 1)
        }
        CfgOp::Assign(v, e) => {
            let mut next = state.clone();
            next[*v] = &e.coeffs.dot(state) + &e.constant;
            halts(cfg, edge.to, &next, fuel - 1)
        }
        CfgOp::Havoc(v) => HAVOC_CHOICES.iter().all(|&val| {
            let mut next = state.clone();
            next[*v] = Rational::from(val);
            halts(cfg, edge.to, &next, fuel - 1)
        }),
    })
}

/// `true` iff every explored execution from `state` at `node` that reaches
/// `header` first arrives inside `inv` (executions that halt or stay in the
/// entry region trivially pass).
fn reaches_header_inside(
    cfg: &Cfg,
    node: usize,
    state: &QVector,
    header: usize,
    inv: &Polyhedron,
    fuel: usize,
) -> bool {
    if node == header {
        return inv.contains_point(state);
    }
    if node == cfg.exit() || fuel == 0 {
        return true;
    }
    cfg.successors(node).all(|edge| match &edge.op {
        CfgOp::Guard(cs) => {
            !cs.iter().all(|c| c.satisfied_by(state))
                || reaches_header_inside(cfg, edge.to, state, header, inv, fuel - 1)
        }
        CfgOp::Assign(v, e) => {
            let mut next = state.clone();
            next[*v] = &e.coeffs.dot(state) + &e.constant;
            reaches_header_inside(cfg, edge.to, &next, header, inv, fuel - 1)
        }
        CfgOp::Havoc(v) => HAVOC_CHOICES.iter().all(|&val| {
            let mut next = state.clone();
            next[*v] = Rational::from(val);
            reaches_header_inside(cfg, edge.to, &next, header, inv, fuel - 1)
        }),
    })
}

/// Instantiates one program of the template family used by the properties.
/// Every member needs an entry precondition to terminate (except the last,
/// provable unconditionally via the bounded-from-below relaxation), so the
/// refinement pipeline — backward propagation included — is on the hot path
/// of every case.
fn template(which: usize, a: i64, k: i64, c: i64) -> String {
    match which % 5 {
        0 => format!("var x, y; while (x > 0) {{ x = x + y; y = y - 1; assume y <= {a}; }}"),
        1 => "var x, y; while (x > 0) { x = x + y; }".to_string(),
        // Backward preimage through a straight-line prefix assignment.
        2 => format!(
            "var x, y; y = y + {k}; while (x > 0) {{ x = x + y; y = y - 1; assume y <= 0; }}"
        ),
        // Branching prefix: the precondition must cover both paths.
        3 => format!(
            "var x, y, c; c = nondet(); if (c >= 1) {{ x = x + 1; }} else {{ x = x + 2; }} \
             while (x > 0) {{ x = x + y; y = y - 1; assume y <= {a}; }}"
        ),
        // Countdown with no entry constraint: provable only because the
        // bounded-from-below relaxation drops ρ ≥ 0 on ⊤.
        _ => format!("var x; while (x > {c}) {{ x = x - {k}; }}"),
    }
}

/// Every engine of the portfolio, for the differential harness.
const ALL_ENGINES: [Engine; 7] = [
    Engine::CompleteLrf,
    Engine::Lasso,
    Engine::Termite,
    Engine::Eager,
    Engine::PodelskiRybalchenko,
    Engine::Heuristic,
    Engine::Piecewise,
];

/// Fuel for the differential zoo: its programs are deterministic (no havoc,
/// no branching), so exploration is a single path and a generous budget is
/// cheap. The multiphase drifts can run for a few hundred iterations from
/// the corner of the sample box before the last phase catches up.
const DIFF_FUEL: usize = 4000;

/// A `phases`-deep multiphase drift: `x1 += x2`, …, and the last variable
/// alone counts down by `step`. Universally terminating; the only linear
/// certificate is a `phases`-phase nested ranking function.
fn drift_src(phases: usize, step: i64) -> String {
    let decls: Vec<String> = (1..=phases).map(|p| format!("x{p}")).collect();
    let mut src = format!("var {}; while (x1 > 0) {{ ", decls.join(", "));
    for p in 1..phases {
        src.push_str(&format!("x{p} = x{p} + x{}; ", p + 1));
    }
    src.push_str(&format!("x{phases} = x{phases} - {step}; }}"));
    src
}

/// One program of the randomized multiphase/lasso zoo, plus its ground
/// truth: `true` iff every initial state terminates.
fn differential_template(which: usize, phases: usize, step: i64, c: i64) -> (String, bool) {
    match which % 4 {
        // Multiphase drift: terminating, lasso-provable at depth `phases`.
        0 => (drift_src(phases, step), true),
        // Stem + linearly ranked loop: terminating (`i` climbs by `step ≥ 1`
        // toward the arbitrary but fixed `n`), LRF `n − i` exists.
        1 => (
            format!("var i, n; i = 0; while (i < n) {{ i = i + {step}; }}"),
            true,
        ),
        // Open drift: diverges whenever y ≥ 0 and x ≥ 1 — only conditional
        // claims can be sound.
        2 => ("var x, y; while (x > 0) { x = x + y; }".to_string(), false),
        // Pendulum: `x ↦ c − x` cycles strictly inside the guard from
        // x = 1 (and x = c − 1), so universal termination is false.
        _ => (
            format!("var x; assume x >= 1; while (x > 0) {{ x = {c} - x; }}"),
            false,
        ),
    }
}

/// What the completeness oracle saw on one program.
#[derive(Debug, PartialEq, Eq)]
enum OracleOutcome {
    /// `complete-lrf` did not answer `NoRankingFunction`, so the oracle has
    /// nothing to cross-check.
    NotRefuted,
    /// `complete-lrf` refuted LRF existence and monodim indeed failed to
    /// synthesise a strict one — the two algorithms agree.
    Agreement,
    /// `complete-lrf` refuted LRF existence but monodim *found* a strict
    /// ranking function: one of the two is wrong.
    Contradiction,
}

/// Runs `complete-lrf` and, when it claims no linear ranking function
/// exists, monodim on the same transition system and invariants. Both sides
/// of the oracle run relative to the *same* invariant — a box, not ⊤, so
/// the extremal-counterexample optimizations stay bounded. Completeness is
/// an invariant-relative notion, so the agreement claim is unaffected by
/// which invariant is used.
fn oracle_agrees(src: &str) -> OracleOutcome {
    let program = parse_program(src).unwrap();
    let ts = program.transition_system();
    let box_inv = Polyhedron::from_constraints(
        ts.num_vars(),
        (0..ts.num_vars())
            .flat_map(|i| {
                let mut unit = vec![0i64; ts.num_vars()];
                unit[i] = 1;
                let axis = QVector::from_i64(&unit);
                [
                    termite_polyhedra::Constraint::ge(axis.clone(), Rational::from(-64)),
                    termite_polyhedra::Constraint::le(axis, Rational::from(64)),
                ]
            })
            .collect(),
    );
    let invariants = vec![box_inv];
    let mut stats = SynthesisStats::default();
    let verdict = complete::prove(&ts, &invariants, &AnalysisOptions::default(), &mut stats);
    if !matches!(
        &verdict,
        Verdict::Unknown {
            reason: UnknownReason::NoRankingFunction
        }
    ) {
        return OracleOutcome::NotRefuted;
    }
    let mut mono_stats = SynthesisStats::default();
    let mut memo = FarkasMemo::new();
    let mut ws = SynthesisLpWorkspace::new(
        &invariants,
        termite_lp::Interrupt::never(),
        LpReuse::CrossLevel,
        &mut memo,
    );
    ws.begin_level(&vec![None; invariants.len()], &mut mono_stats);
    let result = monodim(
        &MonodimInput {
            ts: &ts,
            invariants: &invariants,
            previous: &[],
            max_iterations: 40,
            cancel: &CancelToken::new(),
        },
        &mut ws,
        &mut mono_stats,
    );
    if result.strict {
        OracleOutcome::Contradiction
    } else {
        OracleOutcome::Agreement
    }
}

/// The oracle's refutation branch, exercised deterministically: the
/// stationary loop `while (x > 0) { x = x; }` self-loops at `x = 1`, so no
/// function strictly decreases — `complete-lrf` must refute and monodim
/// must concur. Guarantees the property above is never vacuously green.
#[test]
fn complete_lrf_refutation_branch_is_reachable() {
    assert_eq!(
        oracle_agrees("var x, y; while (x > 0) { x = 0 + x; y = 0; }"),
        OracleOutcome::Agreement
    );
    // And the not-refuted branch, for contrast: a plain countdown has the
    // LRF `x`, so the complete test proves rather than refutes.
    assert_eq!(
        oracle_agrees("var x, y; while (x > 0) { x = x - 1; y = 0; }"),
        OracleOutcome::NotRefuted
    );
}

/// One program of the randomized case-split family for the completeness
/// canary: a walk whose *sum* `x + y` steps toward zero by 1 per iteration,
/// but whose individual variables jump by `±k` / `∓(k−1)`. No convex linear
/// certificate exists (the ranking must be `|x + y|`), and for `k ≥ 2` the
/// per-variable jumps defeat the refinement pipeline's axis-aligned
/// narrowing, so every non-piecewise engine is stuck at `Unknown`.
fn case_split_src(k: i64, swap: bool) -> String {
    let (pos, neg) = (
        format!("x = x - {k}; y = y + {};", k - 1),
        format!("x = x + {k}; y = y - {};", k - 1),
    );
    let (a, b) = if swap { (neg, pos) } else { (pos, neg) };
    let (ga, gb) = if swap {
        ("x + y <= 0 - 1", "x + y >= 1")
    } else {
        ("x + y >= 1", "x + y <= 0 - 1")
    };
    format!(
        "var x, y; while (x + y != 0) {{ \
         choice {{ assume {ga}; {a} }} or {{ assume {gb}; {b} }} }}"
    )
}

proptest! {
    /// The completeness canary: on the randomized case-split family every
    /// engine except `piecewise` answers `Unknown`, and `piecewise` proves
    /// it — so the seventh portfolio lane is never vacuous, and a
    /// regression in any direction (a baseline suddenly proving the family,
    /// or piecewise losing it) fails loudly. The piecewise claim itself is
    /// replayed disjunct-by-disjunct under the demonic simulator.
    #[test]
    fn prop_piecewise_proves_what_the_other_six_cannot(
        k in 2i64..5,
        swap in 0usize..2,
        samples in prop::collection::vec(prop::collection::vec(-6i64..7, 2), 8),
    ) {
        let src = case_split_src(k, swap == 1);
        let program = parse_program(&src).unwrap();
        for engine in ALL_ENGINES {
            if engine == Engine::Piecewise {
                continue;
            }
            let options = AnalysisOptions { engine, ..AnalysisOptions::default() };
            let report = prove_termination(&program, &options);
            prop_assert!(
                matches!(report.verdict, Verdict::Unknown { .. }),
                "{engine:?} unexpectedly answered {:?} on {src}: the canary \
                 family no longer separates piecewise from the baselines",
                report.verdict
            );
        }
        let options = AnalysisOptions { engine: Engine::Piecewise, ..AnalysisOptions::default() };
        let report = prove_termination(&program, &options);
        let Verdict::TerminatesIf { disjuncts, .. } = &report.verdict else {
            panic!("piecewise must prove the case-split family, got {:?} on {src}", report.verdict);
        };
        prop_assert!(disjuncts.len() >= 2, "{src}: expected a genuine case split");
        let cfg = program.to_cfg();
        for s in &samples {
            let state = QVector::from_i64(s);
            if !disjuncts.iter().any(|d| d.clause.contains_point(&state)) {
                continue;
            }
            prop_assert!(
                halts(&cfg, cfg.entry(), &state, DIFF_FUEL),
                "{src}: piecewise claimed termination from {state:?}, but \
                 bounded simulation diverges"
            );
        }
    }

    /// The differential soundness harness: every engine of the portfolio
    /// runs on every program of the randomized multiphase/lasso zoo, and
    ///
    /// 1. every termination claim — universal (`Terminates`) or conditional
    ///    (`TerminatesIf`) — is checked against bounded demonic simulation
    ///    from sampled initial states;
    /// 2. no engine claims universal termination of a program whose ground
    ///    truth is non-terminating;
    /// 3. the engines agree where completeness demands it: the multiphase
    ///    drifts must be proved unconditionally by `lasso`, and the stem
    ///    loop (which has a plain LRF) by `complete-lrf` — a verdict decay
    ///    there is a completeness regression, not schedule noise.
    #[test]
    fn prop_every_engine_is_sound_on_the_lasso_zoo(
        which in 0usize..4,
        phases in 1usize..4,
        step in 1i64..4,
        c in 2i64..6,
        samples in prop::collection::vec(prop::collection::vec(-5i64..6, 3), 8),
    ) {
        let (src, universally_terminating) = differential_template(which, phases, step, c);
        let program = parse_program(&src).unwrap();
        let cfg = program.to_cfg();
        let mut unconditional: Vec<Engine> = Vec::new();
        for engine in ALL_ENGINES {
            let options = AnalysisOptions {
                engine,
                ..AnalysisOptions::default()
            };
            let report = prove_termination(&program, &options);
            // A conditional verdict claims the *union* of its disjunct
            // clauses: each disjunct is replayed independently — a state in
            // any one of them must halt.
            let claimed: Option<Vec<Polyhedron>> = match &report.verdict {
                Verdict::Terminates(_) => {
                    unconditional.push(engine);
                    None
                }
                Verdict::TerminatesIf { disjuncts, .. } => {
                    Some(disjuncts.iter().map(|d| d.clause.clone()).collect())
                }
                Verdict::Unknown { .. } => continue,
            };
            prop_assert!(
                universally_terminating || claimed.is_some(),
                "{engine:?} on {src}: claimed universal termination of a \
                 non-terminating program"
            );
            for s in &samples {
                let state = QVector::from_i64(&s[..program.num_vars()]);
                if claimed
                    .as_ref()
                    .is_some_and(|ps| !ps.iter().any(|p| p.contains_point(&state)))
                {
                    continue;
                }
                prop_assert!(
                    halts(&cfg, cfg.entry(), &state, DIFF_FUEL),
                    "{engine:?} on {src}: claimed terminating from {state:?}, \
                     but bounded simulation diverges"
                );
            }
        }
        match which % 4 {
            0 => prop_assert!(
                unconditional.contains(&Engine::Lasso),
                "lasso must prove the {phases}-phase drift unconditionally: {src}"
            ),
            1 => prop_assert!(
                unconditional.contains(&Engine::CompleteLrf),
                "complete-lrf must prove the LRF-ranked stem loop: {src}"
            ),
            _ => {}
        }
    }

    /// The completeness oracle: `complete-lrf`'s `NoRankingFunction` answer
    /// on a random single-path loop is a *universally quantified* claim —
    /// no linear ranking function exists relative to the (here trivial)
    /// invariant. The monodimensional synthesis searches the same template
    /// space from the extremal-counterexample side, so whenever the
    /// complete test says "none exists", monodim must fail to find a strict
    /// one. (The converse is not checked: monodim failing proves nothing.)
    #[test]
    fn prop_complete_lrf_refutations_bind_monodim(
        ax in -2i64..3,
        ay in -2i64..3,
        bx in -2i64..3,
        by in -2i64..3,
        cst in -3i64..4,
    ) {
        // `x' = ax·x + ay·y + cst`, `y' = bx·x + by·y` — spelled with unit
        // additions, which is all the surface grammar offers. `y` reads the
        // *updated* `x`, which is fine: the loop is still linear and
        // deterministic, and the oracle does not care which relation it is.
        let lin = |vx: i64, vy: i64, k: i64| {
            let mut e = format!("{k}");
            for _ in 0..vx.abs() {
                e.push_str(if vx > 0 { " + x" } else { " - x" });
            }
            for _ in 0..vy.abs() {
                e.push_str(if vy > 0 { " + y" } else { " - y" });
            }
            e
        };
        let src = format!(
            "var x, y; while (x > 0) {{ x = {}; y = {}; }}",
            lin(ax, ay, cst),
            lin(bx, by, 0),
        );
        prop_assert!(oracle_agrees(&src) != OracleOutcome::Contradiction);
    }

    /// Soundness of the verdict lattice against concrete execution: whatever
    /// set of initial states the engine claims termination for — everything
    /// (`Terminates`) or the inferred precondition (`TerminatesIf`) — every
    /// sampled member of that set halts under bounded demonic simulation.
    #[test]
    fn prop_claimed_preconditions_terminate(
        which in 0usize..5,
        a in 0i64..3,
        k in -3i64..4,
        c in 0i64..4,
        samples in prop::collection::vec(prop::collection::vec(-8i64..9, 3), 10),
    ) {
        let k = if which % 5 == 4 { k.abs() + 1 } else { k };
        let src = template(which, a, k, c);
        let program = parse_program(&src).unwrap();
        let cfg = program.to_cfg();
        let report = prove_termination(&program, &AnalysisOptions::default());
        // Every template family member is provable (the probe matrix in this
        // PR covered the full constant ranges) — a verdict decay to Unknown
        // is itself a regression worth failing on.
        let claimed: Option<Vec<Polyhedron>> = match &report.verdict {
            Verdict::Terminates(_) => None,
            Verdict::TerminatesIf { disjuncts, .. } => {
                Some(disjuncts.iter().map(|d| d.clause.clone()).collect())
            }
            Verdict::Unknown { reason } => panic!("{src}: expected a proof, got Unknown ({reason})"),
        };
        for s in &samples {
            let state = QVector::from_i64(&s[..program.num_vars()]);
            if claimed
                .as_ref()
                .is_some_and(|ps| !ps.iter().any(|p| p.contains_point(&state)))
            {
                continue;
            }
            prop_assert!(
                halts(&cfg, cfg.entry(), &state, FUEL),
                "{src}: claimed terminating from {state:?}, but bounded simulation diverges"
            );
        }
    }

    /// Forward/backward agreement on `assume`-constrained programs. The
    /// forward analysis computes a header invariant `I` from the entry
    /// `assume`; seeding the backward propagation with `I` must produce an
    /// entry precondition `P` such that every concrete execution from
    /// `P` reaches the header only inside `I` — and `P` must not be vacuous
    /// (it keeps the `assume`-satisfying entry states).
    #[test]
    fn prop_forward_backward_agree_on_assumes(
        cc in 1i64..5,
        b in 5i64..10,
        samples in prop::collection::vec(prop::collection::vec(-8i64..9, 2), 10),
    ) {
        let src = format!(
            "var x, y; assume y >= {cc} && x <= {b}; while (x > 0) {{ x = x - y; }}"
        );
        let program = parse_program(&src).unwrap();
        // With the assume in place the forward pass alone suffices: the
        // verdict must be unconditional.
        let report = prove_termination(&program, &AnalysisOptions::default());
        prop_assert!(
            report.proved_unconditionally(),
            "{src}: expected an unconditional proof, got {:?}",
            report.verdict
        );

        let cfg = program.to_cfg();
        let header = cfg.loop_headers()[0];
        let inv = analyze_cfg(&cfg, &InvariantOptions::default()).at_node(header).clone();
        let pre = entry_precondition(&cfg, header, &inv);
        // Non-vacuity: a state satisfying the assume is kept.
        prop_assert!(
            pre.contains_point(&QVector::from_i64(&[1, cc])),
            "{src}: backward precondition {pre} dropped the assume-satisfying state (1, {cc})"
        );
        for s in &samples {
            let state = QVector::from_i64(s);
            if !pre.contains_point(&state) {
                continue;
            }
            prop_assert!(
                reaches_header_inside(&cfg, cfg.entry(), &state, header, &inv, FUEL),
                "{src}: state {state:?} satisfies the backward precondition {pre} but \
                 reaches the header outside the forward invariant {inv}"
            );
        }
    }
}
