//! Property tests for the conditional-termination pipeline: verdicts are
//! checked against *bounded concrete simulation* of the node-level CFG, and
//! the backward precondition propagation is checked against the forward
//! analysis on `assume`-constrained programs.
//!
//! The simulator is demonic where the semantics is: every enabled guard edge
//! and every havoc value (from a small probe set) is explored, so one
//! diverging exploration falsifies a termination claim. An execution that
//! gets stuck (no enabled edge — e.g. a failing in-loop `assume`) has
//! terminated.

use proptest::prelude::*;
use termite_core::{prove_termination, AnalysisOptions, Verdict};
use termite_invariants::{analyze_cfg, entry_precondition, InvariantOptions};
use termite_ir::{parse_program, Cfg, CfgOp};
use termite_linalg::QVector;
use termite_num::Rational;
use termite_polyhedra::Polyhedron;

/// Steps of CFG edge-walking each exploration may take. The sampled start
/// states live in a small box, and every template family strictly decreases
/// a sampled variable by ≥ 1 per loop iteration (a handful of edges each),
/// so genuine terminating runs finish well under this budget.
const FUEL: usize = 400;

/// Havoc probe values: a diverging havocked program almost always diverges
/// under one of these already.
const HAVOC_CHOICES: [i64; 5] = [-3, -1, 0, 1, 3];

/// `true` iff every explored execution from `state` at `node` halts (reaches
/// the exit or gets stuck) within `fuel` edge steps.
fn halts(cfg: &Cfg, node: usize, state: &QVector, fuel: usize) -> bool {
    if node == cfg.exit() {
        return true;
    }
    if fuel == 0 {
        return false;
    }
    cfg.successors(node).all(|edge| match &edge.op {
        CfgOp::Guard(cs) => {
            // A disabled guard edge contributes no execution.
            !cs.iter().all(|c| c.satisfied_by(state)) || halts(cfg, edge.to, state, fuel - 1)
        }
        CfgOp::Assign(v, e) => {
            let mut next = state.clone();
            next[*v] = &e.coeffs.dot(state) + &e.constant;
            halts(cfg, edge.to, &next, fuel - 1)
        }
        CfgOp::Havoc(v) => HAVOC_CHOICES.iter().all(|&val| {
            let mut next = state.clone();
            next[*v] = Rational::from(val);
            halts(cfg, edge.to, &next, fuel - 1)
        }),
    })
}

/// `true` iff every explored execution from `state` at `node` that reaches
/// `header` first arrives inside `inv` (executions that halt or stay in the
/// entry region trivially pass).
fn reaches_header_inside(
    cfg: &Cfg,
    node: usize,
    state: &QVector,
    header: usize,
    inv: &Polyhedron,
    fuel: usize,
) -> bool {
    if node == header {
        return inv.contains_point(state);
    }
    if node == cfg.exit() || fuel == 0 {
        return true;
    }
    cfg.successors(node).all(|edge| match &edge.op {
        CfgOp::Guard(cs) => {
            !cs.iter().all(|c| c.satisfied_by(state))
                || reaches_header_inside(cfg, edge.to, state, header, inv, fuel - 1)
        }
        CfgOp::Assign(v, e) => {
            let mut next = state.clone();
            next[*v] = &e.coeffs.dot(state) + &e.constant;
            reaches_header_inside(cfg, edge.to, &next, header, inv, fuel - 1)
        }
        CfgOp::Havoc(v) => HAVOC_CHOICES.iter().all(|&val| {
            let mut next = state.clone();
            next[*v] = Rational::from(val);
            reaches_header_inside(cfg, edge.to, &next, header, inv, fuel - 1)
        }),
    })
}

/// Instantiates one program of the template family used by the properties.
/// Every member needs an entry precondition to terminate (except the last,
/// provable unconditionally via the bounded-from-below relaxation), so the
/// refinement pipeline — backward propagation included — is on the hot path
/// of every case.
fn template(which: usize, a: i64, k: i64, c: i64) -> String {
    match which % 5 {
        0 => format!("var x, y; while (x > 0) {{ x = x + y; y = y - 1; assume y <= {a}; }}"),
        1 => "var x, y; while (x > 0) { x = x + y; }".to_string(),
        // Backward preimage through a straight-line prefix assignment.
        2 => format!(
            "var x, y; y = y + {k}; while (x > 0) {{ x = x + y; y = y - 1; assume y <= 0; }}"
        ),
        // Branching prefix: the precondition must cover both paths.
        3 => format!(
            "var x, y, c; c = nondet(); if (c >= 1) {{ x = x + 1; }} else {{ x = x + 2; }} \
             while (x > 0) {{ x = x + y; y = y - 1; assume y <= {a}; }}"
        ),
        // Countdown with no entry constraint: provable only because the
        // bounded-from-below relaxation drops ρ ≥ 0 on ⊤.
        _ => format!("var x; while (x > {c}) {{ x = x - {k}; }}"),
    }
}

proptest! {
    /// Soundness of the verdict lattice against concrete execution: whatever
    /// set of initial states the engine claims termination for — everything
    /// (`Terminates`) or the inferred precondition (`TerminatesIf`) — every
    /// sampled member of that set halts under bounded demonic simulation.
    #[test]
    fn prop_claimed_preconditions_terminate(
        which in 0usize..5,
        a in 0i64..3,
        k in -3i64..4,
        c in 0i64..4,
        samples in prop::collection::vec(prop::collection::vec(-8i64..9, 3), 10),
    ) {
        let k = if which % 5 == 4 { k.abs() + 1 } else { k };
        let src = template(which, a, k, c);
        let program = parse_program(&src).unwrap();
        let cfg = program.to_cfg();
        let report = prove_termination(&program, &AnalysisOptions::default());
        // Every template family member is provable (the probe matrix in this
        // PR covered the full constant ranges) — a verdict decay to Unknown
        // is itself a regression worth failing on.
        let claimed: Option<&Polyhedron> = match &report.verdict {
            Verdict::Terminates(_) => None,
            Verdict::TerminatesIf { precondition, .. } => Some(precondition),
            Verdict::Unknown { reason } => panic!("{src}: expected a proof, got Unknown ({reason})"),
        };
        for s in &samples {
            let state = QVector::from_i64(&s[..program.num_vars()]);
            if claimed.is_some_and(|p| !p.contains_point(&state)) {
                continue;
            }
            prop_assert!(
                halts(&cfg, cfg.entry(), &state, FUEL),
                "{src}: claimed terminating from {state:?}, but bounded simulation diverges"
            );
        }
    }

    /// Forward/backward agreement on `assume`-constrained programs. The
    /// forward analysis computes a header invariant `I` from the entry
    /// `assume`; seeding the backward propagation with `I` must produce an
    /// entry precondition `P` such that every concrete execution from
    /// `P` reaches the header only inside `I` — and `P` must not be vacuous
    /// (it keeps the `assume`-satisfying entry states).
    #[test]
    fn prop_forward_backward_agree_on_assumes(
        cc in 1i64..5,
        b in 5i64..10,
        samples in prop::collection::vec(prop::collection::vec(-8i64..9, 2), 10),
    ) {
        let src = format!(
            "var x, y; assume y >= {cc} && x <= {b}; while (x > 0) {{ x = x - y; }}"
        );
        let program = parse_program(&src).unwrap();
        // With the assume in place the forward pass alone suffices: the
        // verdict must be unconditional.
        let report = prove_termination(&program, &AnalysisOptions::default());
        prop_assert!(
            report.proved_unconditionally(),
            "{src}: expected an unconditional proof, got {:?}",
            report.verdict
        );

        let cfg = program.to_cfg();
        let header = cfg.loop_headers()[0];
        let inv = analyze_cfg(&cfg, &InvariantOptions::default()).at_node(header).clone();
        let pre = entry_precondition(&cfg, header, &inv);
        // Non-vacuity: a state satisfying the assume is kept.
        prop_assert!(
            pre.contains_point(&QVector::from_i64(&[1, cc])),
            "{src}: backward precondition {pre} dropped the assume-satisfying state (1, {cc})"
        );
        for s in &samples {
            let state = QVector::from_i64(s);
            if !pre.contains_point(&state) {
                continue;
            }
            prop_assert!(
                reaches_header_inside(&cfg, cfg.entry(), &state, header, &inv, FUEL),
                "{src}: state {state:?} satisfies the backward precondition {pre} but \
                 reaches the header outside the forward invariant {inv}"
            );
        }
    }
}
