//! Equivalence property of the cross-level LP workspace (ISSUE 5
//! acceptance): synthesis with the γ-basis snapshot restored across
//! lexicographic levels must produce **byte-identical** verdicts, ranking
//! functions and preconditions to a cold run that rebuilds the LP session
//! from scratch at every level (`LpReuse::PerLevel`).
//!
//! The equivalence is exact, not statistical: a snapshot restore reinstates
//! precisely the tableau state a fresh build reaches, so the two modes pivot
//! through identical sequences. Any divergence — a truncation bug, a stale
//! basis, a Farkas memo entry aliasing two rows — shows up here as a
//! verdict, template, pivot-count or LP-trace mismatch on some randomized
//! multi-level program.

use proptest::prelude::*;
use termite_core::{prove_termination, AnalysisOptions, LpReuse, TerminationReport, Verdict};
use termite_ir::parse_program;

/// Randomized programs that need (or at least probe) *several*
/// lexicographic levels, so the cross-level restore path is on the hot
/// path: reset loops (Example 3 of the paper), nested and triangular loops,
/// and a conditional-termination member that drives the refinement pipeline
/// (precondition equality included in the property).
fn template(which: usize, a: i64, b: i64, m: i64) -> String {
    match which % 5 {
        // Example 3: inner counter reset from an unbounded variable — the
        // lexicographic pair (i, j) is required.
        0 => format!(
            "var i, j, N; assume i >= 0 && j >= 0 && N >= 0; \
             while (i > 0) {{ choice {{ assume j > {a}; j = j - {b}; }} \
             or {{ assume j <= {a}; i = i - 1; j = N; }} }}"
        ),
        // Nested loops with interacting guards.
        1 => format!(
            "var i, j; i = 0; while (i < {m}) {{ j = 0; \
             while (i > {a} && j <= {m}) {{ j = j + 1; }} i = i + 1; }}"
        ),
        // Triangular iteration: the inner bound moves with the outer.
        2 => format!(
            "var i, j, n; assume n >= 0 && n <= {m}; i = 0; \
             while (i < n) {{ j = i; while (j < n) {{ j = j + {b}; }} i = i + 1; }}"
        ),
        // Conditional termination: provable only under an inferred
        // precondition on y, so the refinement pipeline (and its byte-equal
        // precondition) is exercised.
        3 => format!("var x, y; while (x > 0) {{ x = x + y; y = y - {b}; assume y <= {a}; }}"),
        // Two sequential loops with a hand-off: the homogenised constant
        // coordinate plus a second level carry the phase change.
        _ => format!(
            "var x, y; assume y >= 0; while (x > 0) {{ x = x - {b}; }} \
             while (y > 0) {{ y = y - 1; x = x + {a}; }}"
        ),
    }
}

/// Everything the property compares: the full verdict (ranking function and
/// precondition included — `Verdict` is `PartialEq` down to every rational
/// coefficient) plus the deterministic halves of the statistics. Wall-clock
/// is excluded; reuse counters are excluded because differing is their job.
fn fingerprint(report: &TerminationReport) -> (Verdict, usize, usize, usize, usize, usize) {
    (
        report.verdict.clone(),
        report.stats.iterations,
        report.stats.lp_instances,
        report.stats.lp_pivots,
        report.stats.counterexamples,
        report.stats.dimension,
    )
}

proptest! {
    /// Cross-level warm-started synthesis ≡ cold from-scratch synthesis,
    /// byte for byte, on randomized multi-level programs.
    #[test]
    fn prop_cross_level_reuse_is_byte_identical_to_cold(
        which in 0usize..5,
        a in 0i64..4,
        b in 1i64..4,
        m in 2i64..6,
    ) {
        let src = template(which, a, b, m);
        let program = parse_program(&src).unwrap();

        let warm = prove_termination(&program, &AnalysisOptions::default());
        let cold_options = AnalysisOptions {
            lp_reuse: LpReuse::PerLevel,
            ..AnalysisOptions::default()
        };
        let cold = prove_termination(&program, &cold_options);

        prop_assert_eq!(
            fingerprint(&warm),
            fingerprint(&cold),
            "{src}: cross-level reuse changed the result"
        );
        // The warm side must actually have warm-started: every one of its
        // LP instances after the priming solve takes the warm path.
        prop_assert_eq!(
            warm.stats.lp_warm_hits,
            warm.stats.lp_instances,
            "{src}: a solve fell back to the cold two-phase path"
        );
    }
}

/// The multi-level members of the family really do restore the basis across
/// levels (i.e. the property above does not pass vacuously with every
/// program finishing in one level).
#[test]
fn corpus_exercises_cross_level_restores() {
    let mut total_reuses = 0usize;
    for (which, a, b, m) in [(0usize, 1i64, 1i64, 4i64), (1, 2, 1, 5), (2, 0, 1, 4)] {
        let program = parse_program(&template(which, a, b, m)).unwrap();
        let report = prove_termination(&program, &AnalysisOptions::default());
        total_reuses += report.stats.basis_reuses;
    }
    assert!(
        total_reuses > 0,
        "no lexicographic descent restored the γ-basis snapshot"
    );
}
