//! Backward liveness analysis and dead-variable elimination.
//!
//! Termination of a run depends only on the guards it evaluates — a
//! variable whose value can never reach a guard cannot influence whether
//! any loop exits. Liveness is therefore seeded **empty at program exit**
//! (no "return value" keeps anything alive) and flows backward from guard
//! uses: it is relative to the cut-point guards, not to exit values. An
//! assignment whose target is dead at that point is deleted outright
//! (expressions in this language have no side effects), which cascades —
//! deleting `d2 = d1 + d0` can make `d1`'s defining assignment dead in the
//! next sweep, so [`eliminate_dead`] iterates to a fixpoint.
//!
//! Two views of the same dataflow are provided: [`eliminate_dead`] works on
//! the structured AST (where statements can actually be deleted), and
//! [`live_at_nodes`] runs the classic per-node backward fixpoint over the
//! lowered [`Cfg`] — used by tests to cross-check the structured sweep and
//! by diagnostics to report per-cut-point liveness.

use crate::ast::{Cond, Expr, Program, Stmt};
use crate::cfg::{Cfg, CfgOp};

/// A set of variables, densely indexed.
type VarSet = Vec<bool>;

fn uses_expr(e: &Expr, set: &mut VarSet) {
    match e {
        Expr::Const(_) | Expr::Nondet => {}
        Expr::Var(v) => set[*v] = true,
        Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) => {
            uses_expr(a, set);
            uses_expr(b, set);
        }
        Expr::Neg(a) => uses_expr(a, set),
    }
}

fn uses_cond(c: &Cond, set: &mut VarSet) {
    match c {
        Cond::True | Cond::False | Cond::Nondet => {}
        Cond::Cmp(a, _, b) => {
            uses_expr(a, set);
            uses_expr(b, set);
        }
        Cond::And(cs) | Cond::Or(cs) => cs.iter().for_each(|c| uses_cond(c, set)),
        Cond::Not(c) => uses_cond(c, set),
    }
}

fn union_into(dst: &mut VarSet, src: &VarSet) {
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d |= *s;
    }
}

/// Pure backward analysis of a statement list: the live set before the
/// list, given the live set after it. Never mutates.
fn live_through(stmts: &[Stmt], after: &VarSet) -> VarSet {
    let mut live = after.clone();
    for s in stmts.iter().rev() {
        live = live_through_stmt(s, &live);
    }
    live
}

fn live_through_stmt(s: &Stmt, after: &VarSet) -> VarSet {
    match s {
        Stmt::Skip => after.clone(),
        Stmt::Assign(v, e) => {
            if !after[*v] {
                // Dead target: the statement contributes nothing.
                return after.clone();
            }
            let mut live = after.clone();
            live[*v] = false;
            uses_expr(e, &mut live);
            live
        }
        Stmt::Assume(c) => {
            let mut live = after.clone();
            uses_cond(c, &mut live);
            live
        }
        Stmt::If(c, a, b) => {
            let mut live = live_through(a, after);
            union_into(&mut live, &live_through(b, after));
            uses_cond(c, &mut live);
            live
        }
        Stmt::Choice(branches) => {
            let mut live = after.clone();
            for b in branches {
                union_into(&mut live, &live_through(b, after));
            }
            live
        }
        Stmt::While(c, body) => loop_header_live(c, body, after),
    }
}

/// The live set at a loop header: the least fixpoint of
/// `L = uses(guard) ∪ after ∪ live_through(body, L)`.
fn loop_header_live(c: &Cond, body: &[Stmt], after: &VarSet) -> VarSet {
    let mut live = after.clone();
    uses_cond(c, &mut live);
    loop {
        let mut next = live.clone();
        union_into(&mut next, &live_through(body, &live));
        if next == live {
            return live;
        }
        live = next;
    }
}

/// One backward sweep deleting assignments to dead variables; returns
/// `(live before the list, whether anything was deleted)`.
fn sweep(stmts: &mut Vec<Stmt>, after: &VarSet, changed: &mut bool) -> VarSet {
    let mut live = after.clone();
    let mut kept: Vec<Stmt> = Vec::with_capacity(stmts.len());
    for mut s in std::mem::take(stmts).into_iter().rev() {
        match &mut s {
            Stmt::Assign(v, _) if !live[*v] => {
                *changed = true;
                continue;
            }
            Stmt::If(c, a, b) => {
                let after_branch = live.clone();
                let mut before = sweep(a, &after_branch, changed);
                union_into(&mut before, &sweep(b, &after_branch, changed));
                uses_cond(c, &mut before);
                live = before;
                kept.push(s);
                continue;
            }
            Stmt::Choice(branches) => {
                let after_branch = live.clone();
                let mut before = after_branch.clone();
                for branch in branches.iter_mut() {
                    union_into(&mut before, &sweep(branch, &after_branch, changed));
                }
                live = before;
                kept.push(s);
                continue;
            }
            Stmt::While(c, body) => {
                // Deletion decisions inside the body must use the header
                // fixpoint, not the post-loop set: a value written by one
                // iteration can be read by the next.
                let header = loop_header_live(c, body, &live);
                sweep(body, &header, changed);
                live = header;
                kept.push(s);
                continue;
            }
            _ => {}
        }
        live = live_through_stmt(&s, &live);
        kept.push(s);
    }
    kept.reverse();
    *stmts = kept;
    live
}

/// Deletes every assignment whose target is dead, iterating until no more
/// statements die; returns whether anything changed.
pub fn eliminate_dead(program: &mut Program) -> bool {
    let n = program.num_vars();
    let mut changed_any = false;
    loop {
        let mut changed = false;
        let exit = vec![false; n];
        sweep(&mut program.body, &exit, &mut changed);
        if !changed {
            return changed_any;
        }
        changed_any = true;
    }
}

/// Classic backward liveness over the lowered CFG: `live[node][var]` is
/// `true` when some path from `node` reads `var` before writing it. The
/// exit node starts empty (termination analysis observes no final values).
pub fn live_at_nodes(cfg: &Cfg) -> Vec<Vec<bool>> {
    let n = cfg.num_vars();
    let mut live: Vec<Vec<bool>> = vec![vec![false; n]; cfg.num_nodes()];
    loop {
        let mut changed = false;
        for node in (0..cfg.num_nodes()).rev() {
            let mut out = live[node].clone();
            for edge in cfg.successors(node) {
                let mut inflow = live[edge.to].clone();
                match &edge.op {
                    CfgOp::Guard(constraints) => {
                        for c in constraints {
                            for (v, coeff) in c.coeffs.iter().enumerate() {
                                if !coeff.is_zero() {
                                    inflow[v] = true;
                                }
                            }
                        }
                    }
                    CfgOp::Assign(v, e) => {
                        inflow[*v] = false;
                        for (u, coeff) in e.coeffs.iter().enumerate() {
                            if !coeff.is_zero() {
                                inflow[u] = true;
                            }
                        }
                    }
                    CfgOp::Havoc(v) => inflow[*v] = false,
                }
                union_into(&mut out, &inflow);
            }
            if out != live[node] {
                live[node] = out;
                changed = true;
            }
        }
        if !changed {
            return live;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn eliminated(src: &str) -> Program {
        let mut p = parse_program(src).unwrap();
        eliminate_dead(&mut p);
        p
    }

    #[test]
    fn dead_tail_assignment_dies() {
        let p = eliminated("var x, d; while (x > 0) { x = x - 1; } d = x + 1;");
        assert_eq!(p.body.len(), 1, "{:?}", p.body);
    }

    #[test]
    fn loop_carried_value_stays_alive() {
        // `d` is written in one iteration and read by the guard-feeding
        // assume of the next; the header fixpoint must keep it.
        let src = "var x, d; while (x > 0) { assume d >= 0; x = x - 1; d = d + x; }";
        let p = eliminated(src);
        assert_eq!(p, parse_program(src).unwrap());
    }

    #[test]
    fn transitive_deadness_needs_and_gets_iteration() {
        let p = eliminated("var x, d0, d1; while (x > 0) { x = x - 1; d0 = x; d1 = d0 + 1; }");
        let Stmt::While(_, body) = &p.body[0] else {
            panic!("{:?}", p.body);
        };
        assert_eq!(body.len(), 1, "{:?}", body);
    }

    #[test]
    fn branch_uses_keep_values_alive() {
        let src =
            "var x, d; d = 5; while (x > 0) { if (nondet()) { x = x - d; } else { x = x - 1; } }";
        let p = eliminated(src);
        assert_eq!(p, parse_program(src).unwrap());
    }

    #[test]
    fn choice_branch_assignments_respect_liveness() {
        let p = eliminated(
            "var x, d; while (x > 0) { choice { x = x - 1; d = 1; } or { x = x - 2; d = 2; } }",
        );
        let Stmt::While(_, body) = &p.body[0] else {
            panic!("{:?}", p.body);
        };
        let Stmt::Choice(branches) = &body[0] else {
            panic!("{:?}", body);
        };
        assert!(branches.iter().all(|b| b.len() == 1), "{branches:?}");
    }

    #[test]
    fn cfg_liveness_agrees_with_structured_sweep() {
        // Padding that is dead at the header without transitive chains in
        // the loop (a self-referencing dead store like `d0 = d0 + 1` is
        // live under classic CFG liveness — only the iterated structured
        // sweep can remove it, which is the point of eliminate_dead's
        // fixpoint loop).
        let src = "var x, d0, d1, c0; assume x >= 0; \
                   c0 = 7; d0 = c0 + x; d1 = d0 + d0; \
                   while (x > 0) { x = x - 1; d0 = x + 1; }";
        let p = parse_program(src).unwrap();
        let cfg = p.to_cfg();
        let live = live_at_nodes(&cfg);
        // x is live at the loop header; the padding never is.
        for &header in cfg.loop_headers() {
            assert!(live[header][0], "x must be live at the header");
            assert!(!live[header][1] && !live[header][2] && !live[header][3]);
        }
        // The structured elimination deletes exactly the padding stores.
        let mut q = p.clone();
        eliminate_dead(&mut q);
        let mut used = vec![false; q.num_vars()];
        super::super::mark_stmts(&q.body, &mut used);
        assert_eq!(used, vec![true, false, false, false]);
    }
}
