//! Forward constant propagation of affine assignments.
//!
//! A variable assigned a literal (`x := c`) stays that literal until a
//! havoc (`x := nondet()`), a non-constant assignment, or a loop join can
//! change it; every use it reaches folds to the literal, after which the
//! defining assignment is dead and [`super::liveness`] removes it.
//!
//! Constants are learned **only from assignments**, never from `assume`d
//! equalities: an `assume x == 5` constrains the state space (and is the
//! idiom the benchmark suites use to set up symbolic inputs), but rewriting
//! its uses would change the guard structure the LP and invariant engines
//! see for no dimension win — the variable stays live either way.
//!
//! Loops are handled conservatively: at a loop header every variable
//! assigned anywhere in the body (nested loops included) is forgotten,
//! which is exactly the join over the entry and back edges.

use super::merge::{fold_cond, fold_expr};
use crate::ast::{Cond, Expr, Program, Stmt, VarId};

/// One forward propagation sweep; returns whether anything was rewritten.
pub fn propagate(program: &mut Program) -> bool {
    let mut env: Vec<Option<i64>> = vec![None; program.num_vars()];
    let mut changed = false;
    prop_stmts(&mut program.body, &mut env, &mut changed);
    changed
}

fn subst_expr(e: &Expr, env: &[Option<i64>]) -> Expr {
    match e {
        Expr::Const(_) | Expr::Nondet => e.clone(),
        Expr::Var(v) => match env[*v] {
            Some(c) => Expr::Const(c),
            None => e.clone(),
        },
        Expr::Add(a, b) => Expr::Add(Box::new(subst_expr(a, env)), Box::new(subst_expr(b, env))),
        Expr::Sub(a, b) => Expr::Sub(Box::new(subst_expr(a, env)), Box::new(subst_expr(b, env))),
        Expr::Mul(a, b) => Expr::Mul(Box::new(subst_expr(a, env)), Box::new(subst_expr(b, env))),
        Expr::Neg(a) => Expr::Neg(Box::new(subst_expr(a, env))),
    }
}

fn subst_cond(c: &Cond, env: &[Option<i64>]) -> Cond {
    match c {
        Cond::True | Cond::False | Cond::Nondet => c.clone(),
        Cond::Cmp(a, op, b) => Cond::Cmp(subst_expr(a, env), *op, subst_expr(b, env)),
        Cond::And(cs) => Cond::And(cs.iter().map(|c| subst_cond(c, env)).collect()),
        Cond::Or(cs) => Cond::Or(cs.iter().map(|c| subst_cond(c, env)).collect()),
        Cond::Not(inner) => Cond::Not(Box::new(subst_cond(inner, env))),
    }
}

/// Variables assigned (or havocked) anywhere in the statement list,
/// including nested constructs.
fn collect_assigned(stmts: &[Stmt], out: &mut Vec<VarId>) {
    for s in stmts {
        match s {
            Stmt::Assign(v, _) => out.push(*v),
            Stmt::Skip | Stmt::Assume(_) => {}
            Stmt::If(_, a, b) => {
                collect_assigned(a, out);
                collect_assigned(b, out);
            }
            Stmt::Choice(branches) => branches.iter().for_each(|b| collect_assigned(b, out)),
            Stmt::While(_, body) => collect_assigned(body, out),
        }
    }
}

fn join_env(a: &[Option<i64>], b: &[Option<i64>]) -> Vec<Option<i64>> {
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| if x == y { *x } else { None })
        .collect()
}

fn rewrite_cond(c: &mut Cond, env: &[Option<i64>], changed: &mut bool) {
    let folded = fold_cond(subst_cond(c, env));
    if folded != *c {
        *changed = true;
        *c = folded;
    }
}

fn prop_stmts(stmts: &mut [Stmt], env: &mut Vec<Option<i64>>, changed: &mut bool) {
    for stmt in stmts {
        match stmt {
            Stmt::Skip => {}
            Stmt::Assign(v, e) => {
                let folded = fold_expr(subst_expr(e, env));
                if folded != *e {
                    *changed = true;
                    *e = folded;
                }
                env[*v] = match e {
                    Expr::Const(k) => Some(*k),
                    _ => None,
                };
            }
            Stmt::Assume(c) => rewrite_cond(c, env, changed),
            Stmt::If(c, a, b) => {
                rewrite_cond(c, env, changed);
                let mut env_a = env.clone();
                let mut env_b = env.clone();
                prop_stmts(a, &mut env_a, changed);
                prop_stmts(b, &mut env_b, changed);
                *env = match c {
                    Cond::True => env_a,
                    Cond::False => env_b,
                    _ => join_env(&env_a, &env_b),
                };
            }
            Stmt::Choice(branches) => {
                let mut joined: Option<Vec<Option<i64>>> = None;
                for branch in branches.iter_mut() {
                    let mut env_b = env.clone();
                    prop_stmts(branch, &mut env_b, changed);
                    joined = Some(match joined {
                        None => env_b,
                        Some(j) => join_env(&j, &env_b),
                    });
                }
                if let Some(j) = joined {
                    *env = j;
                }
            }
            Stmt::While(c, body) => {
                // Header join: anything the body can write is unknown both
                // at the guard and after the loop.
                let mut assigned = Vec::new();
                collect_assigned(body, &mut assigned);
                for v in assigned {
                    env[v] = None;
                }
                rewrite_cond(c, env, changed);
                let mut env_body = env.clone();
                prop_stmts(body, &mut env_body, changed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn propagated(src: &str) -> Program {
        let mut p = parse_program(src).unwrap();
        propagate(&mut p);
        p
    }

    #[test]
    fn literal_reaches_use_and_folds() {
        let p = propagated("var x, c; c = 2; while (x > 0) { x = x - c; }");
        let Stmt::While(_, body) = &p.body[1] else {
            panic!("{:?}", p.body);
        };
        assert_eq!(
            body[0],
            Stmt::Assign(
                0,
                Expr::Sub(Box::new(Expr::Var(0)), Box::new(Expr::Const(2)))
            )
        );
    }

    #[test]
    fn loop_join_forgets_loop_written_variables() {
        let src = "var i, n; i = 0; while (i < n) { i = i + 1; }";
        let p = propagated(src);
        // `i` is written in the body, so the guard must not fold `i` to 0.
        assert_eq!(p, parse_program(src).unwrap());
    }

    #[test]
    fn assumes_never_teach_constants() {
        let src = "var x, y; assume x == 5; y = x + 1; while (y > 0) { y = y - 1; }";
        let p = propagated(src);
        assert_eq!(p, parse_program(src).unwrap());
    }

    #[test]
    fn havoc_kills_the_constant() {
        let src = "var x, c; c = 1; c = nondet(); while (x > 0) { x = x - c; }";
        let p = propagated(src);
        assert_eq!(p, parse_program(src).unwrap());
    }

    #[test]
    fn branch_join_keeps_only_agreeing_constants() {
        let p = propagated(
            "var x, a, b; \
             if (nondet()) { a = 1; b = 1; } else { a = 1; b = 2; } \
             x = a; x = b;",
        );
        // `a` is 1 on both arms and folds; `b` disagrees and must not.
        assert_eq!(p.body[1], Stmt::Assign(0, Expr::Const(1)));
        assert_eq!(p.body[2], Stmt::Assign(0, Expr::Var(2)));
    }

    #[test]
    fn constants_fold_into_branch_guards() {
        let p = propagated(
            "var x, c; c = 3; \
             if (c > 10) { x = x + 1; } else { x = x - 1; } ",
        );
        // The guard folded to a constant; merge::simplify will splice it.
        assert_eq!(
            p.body[1],
            Stmt::If(
                Cond::False,
                vec![Stmt::Assign(
                    0,
                    Expr::Add(Box::new(Expr::Var(0)), Box::new(Expr::Const(1)))
                )],
                vec![Stmt::Assign(
                    0,
                    Expr::Sub(Box::new(Expr::Var(0)), Box::new(Expr::Const(1)))
                )],
            )
        );
    }

    #[test]
    fn transitive_chains_fold_in_one_sweep() {
        let p = propagated("var x, a, b; a = 2; b = a + 3; x = b + b;");
        assert_eq!(p.body[2], Stmt::Assign(0, Expr::Const(10)));
    }
}
