//! Unreachable-code elimination and straight-line block merging.
//!
//! Structured programs have no free-floating basic blocks, so "merge
//! straight-line blocks" takes the AST form: fold conditions that are
//! constant, splice the surviving arm of an `if` whose condition folded (or
//! whose arms are identical), delete `skip`s, self-assignments and no-op
//! branch constructs, merge adjacent `assume`s into one conjunction, and
//! drop everything unreachable after an `assume false` or a `while (true)`
//! (the lowering emits no exit edge for a `true` guard, so the trailing
//! nodes were dead weight in both the invariant CFG and the block
//! encoding). Every rewrite removes CFG nodes or merge temporaries that the
//! downstream LP/SMT encodings would otherwise pay for.

use crate::ast::{CmpOp, Cond, Expr, Program, Stmt};

/// Applies the structural simplifications until the statement tree is
/// stable for this pass; returns whether anything changed.
pub fn simplify(program: &mut Program) -> bool {
    let mut changed = false;
    if let Some(init) = program.init.take() {
        let folded = fold_cond(init.clone());
        if folded != init {
            changed = true;
        }
        // `assume true` at the entry is no assumption at all.
        if folded == Cond::True {
            changed = true;
        } else {
            program.init = Some(folded);
        }
    }
    simplify_stmts(&mut program.body, &mut changed);
    changed
}

/// Constant-folds an expression (checked arithmetic: on i64 overflow the
/// node is left as-is rather than folded wrongly).
pub fn fold_expr(e: Expr) -> Expr {
    match e {
        Expr::Const(_) | Expr::Var(_) | Expr::Nondet => e,
        Expr::Add(a, b) => {
            let (a, b) = (fold_expr(*a), fold_expr(*b));
            match (&a, &b) {
                (Expr::Const(x), Expr::Const(y)) => match x.checked_add(*y) {
                    Some(v) => Expr::Const(v),
                    None => Expr::Add(Box::new(a), Box::new(b)),
                },
                _ => Expr::Add(Box::new(a), Box::new(b)),
            }
        }
        Expr::Sub(a, b) => {
            let (a, b) = (fold_expr(*a), fold_expr(*b));
            match (&a, &b) {
                (Expr::Const(x), Expr::Const(y)) => match x.checked_sub(*y) {
                    Some(v) => Expr::Const(v),
                    None => Expr::Sub(Box::new(a), Box::new(b)),
                },
                _ => Expr::Sub(Box::new(a), Box::new(b)),
            }
        }
        Expr::Mul(a, b) => {
            let (a, b) = (fold_expr(*a), fold_expr(*b));
            match (&a, &b) {
                (Expr::Const(x), Expr::Const(y)) => match x.checked_mul(*y) {
                    Some(v) => Expr::Const(v),
                    None => Expr::Mul(Box::new(a), Box::new(b)),
                },
                _ => Expr::Mul(Box::new(a), Box::new(b)),
            }
        }
        Expr::Neg(a) => {
            let a = fold_expr(*a);
            match &a {
                Expr::Const(x) => match x.checked_neg() {
                    Some(v) => Expr::Const(v),
                    None => Expr::Neg(Box::new(a)),
                },
                _ => Expr::Neg(Box::new(a)),
            }
        }
    }
}

/// Constant-folds a condition down to `True`/`False` where possible.
pub fn fold_cond(c: Cond) -> Cond {
    match c {
        Cond::True | Cond::False | Cond::Nondet => c,
        Cond::Cmp(a, op, b) => {
            let (a, b) = (fold_expr(a), fold_expr(b));
            if let (Expr::Const(x), Expr::Const(y)) = (&a, &b) {
                let holds = match op {
                    CmpOp::Eq => x == y,
                    CmpOp::Ne => x != y,
                    CmpOp::Le => x <= y,
                    CmpOp::Lt => x < y,
                    CmpOp::Ge => x >= y,
                    CmpOp::Gt => x > y,
                };
                return if holds { Cond::True } else { Cond::False };
            }
            Cond::Cmp(a, op, b)
        }
        Cond::And(cs) => {
            let mut out = Vec::with_capacity(cs.len());
            for c in cs {
                match fold_cond(c) {
                    Cond::True => {}
                    Cond::False => return Cond::False,
                    other => out.push(other),
                }
            }
            match out.len() {
                0 => Cond::True,
                1 => out.pop().unwrap(),
                _ => Cond::And(out),
            }
        }
        Cond::Or(cs) => {
            let mut out = Vec::with_capacity(cs.len());
            for c in cs {
                match fold_cond(c) {
                    Cond::False => {}
                    Cond::True => return Cond::True,
                    other => out.push(other),
                }
            }
            match out.len() {
                0 => Cond::False,
                1 => out.pop().unwrap(),
                _ => Cond::Or(out),
            }
        }
        Cond::Not(inner) => match fold_cond(*inner) {
            Cond::True => Cond::False,
            Cond::False => Cond::True,
            Cond::Nondet => Cond::Nondet,
            Cond::Not(c) => *c,
            other => Cond::Not(Box::new(other)),
        },
    }
}

fn simplify_stmts(stmts: &mut Vec<Stmt>, changed: &mut bool) {
    let input = std::mem::take(stmts);
    let mut out: Vec<Stmt> = Vec::with_capacity(input.len());
    let mut iter = input.into_iter();
    while let Some(stmt) = iter.next() {
        match stmt {
            Stmt::Skip => *changed = true,
            Stmt::Assign(v, e) => {
                let folded = fold_expr(e.clone());
                if folded != e {
                    *changed = true;
                }
                if folded == Expr::Var(v) {
                    // Self-assignment: a pure no-op node.
                    *changed = true;
                } else {
                    out.push(Stmt::Assign(v, folded));
                }
            }
            Stmt::Assume(c) => {
                let folded = fold_cond(c.clone());
                if folded != c {
                    *changed = true;
                }
                match folded {
                    Cond::True => *changed = true,
                    Cond::False => {
                        // Nothing after an `assume false` ever runs.
                        out.push(Stmt::Assume(Cond::False));
                        if iter.next().is_some() {
                            *changed = true;
                        }
                        break;
                    }
                    folded => {
                        if let Some(Stmt::Assume(prev)) = out.last_mut() {
                            // Adjacent assumes merge into one guard node.
                            let merged =
                                Cond::And(vec![std::mem::replace(prev, Cond::True), folded]);
                            *prev = merged;
                            *changed = true;
                        } else {
                            out.push(Stmt::Assume(folded));
                        }
                    }
                }
            }
            Stmt::If(c, mut a, mut b) => {
                let folded = fold_cond(c.clone());
                if folded != c {
                    *changed = true;
                }
                simplify_stmts(&mut a, changed);
                simplify_stmts(&mut b, changed);
                match folded {
                    Cond::True => {
                        *changed = true;
                        out.extend(a);
                    }
                    Cond::False => {
                        *changed = true;
                        out.extend(b);
                    }
                    folded => {
                        if a == b {
                            // Identical arms: the branch (and its merge
                            // temporaries in the block encoding) is a no-op.
                            *changed = true;
                            out.extend(a);
                        } else {
                            out.push(Stmt::If(folded, a, b));
                        }
                    }
                }
            }
            Stmt::Choice(mut branches) => {
                for b in &mut branches {
                    simplify_stmts(b, changed);
                }
                if branches.len() == 1 {
                    *changed = true;
                    out.extend(branches.pop().unwrap());
                } else if branches.iter().all(|b| b.is_empty()) {
                    *changed = true;
                } else if branches.windows(2).all(|w| w[0] == w[1]) {
                    // All branches identical: no nondeterminism left.
                    *changed = true;
                    out.extend(branches.pop().unwrap());
                } else {
                    out.push(Stmt::Choice(branches));
                }
            }
            Stmt::While(c, mut body) => {
                let folded = fold_cond(c.clone());
                if folded != c {
                    *changed = true;
                }
                simplify_stmts(&mut body, changed);
                match folded {
                    Cond::False => *changed = true, // the body never runs
                    Cond::True => {
                        out.push(Stmt::While(Cond::True, body));
                        // The lowering emits no exit edge for a `true`
                        // guard: everything after is unreachable.
                        if iter.next().is_some() {
                            *changed = true;
                        }
                        break;
                    }
                    folded => out.push(Stmt::While(folded, body)),
                }
            }
        }
    }
    *stmts = out;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn simplified(src: &str) -> Program {
        let mut p = parse_program(src).unwrap();
        simplify(&mut p);
        p
    }

    #[test]
    fn skips_and_self_assignments_vanish() {
        let p = simplified("var x; skip; x = x; while (x > 0) { skip; x = x - 1; skip; }");
        let Stmt::While(_, body) = &p.body[0] else {
            panic!("{:?}", p.body);
        };
        assert_eq!(p.body.len(), 1);
        assert_eq!(body.len(), 1);
    }

    #[test]
    fn constant_branches_fold_away() {
        let p = simplified(
            "var x; assume x >= 0; \
             if (3 > 10) { x = x + 1; } else { skip; } \
             while (x > 0) { x = x - 1; }",
        );
        assert_eq!(p.body.len(), 2, "{:?}", p.body);
        assert!(matches!(p.body[1], Stmt::While(_, _)));
    }

    #[test]
    fn false_loop_disappears_and_true_loop_truncates_tail() {
        let p = simplified(
            "var x; while (false) { x = x + 1; } \
             while (true) { assume x > 0; x = x - 1; } \
             x = 99;",
        );
        assert_eq!(p.body.len(), 1, "{:?}", p.body);
        assert!(matches!(&p.body[0], Stmt::While(Cond::True, _)));
    }

    #[test]
    fn adjacent_assumes_merge() {
        let p = simplified("var x, y; assume x >= 0; assume y >= x; while (x > 0) { x = x - 1; }");
        assert_eq!(p.body.len(), 2, "{:?}", p.body);
        assert!(matches!(&p.body[0], Stmt::Assume(Cond::And(cs)) if cs.len() == 2));
    }

    #[test]
    fn assume_false_truncates() {
        let p = simplified("var x; assume false; while (x > 0) { x = x - 1; }");
        assert_eq!(p.body, vec![Stmt::Assume(Cond::False)]);
    }

    #[test]
    fn identical_if_arms_collapse() {
        let p = simplified("var x, y; if (y > 0) { x = x - 1; } else { x = x - 1; } skip;");
        assert_eq!(p.body, vec![Stmt::Assign(0, fold_expr(parse_rhs()))]);
        fn parse_rhs() -> Expr {
            Expr::Sub(Box::new(Expr::Var(0)), Box::new(Expr::Const(1)))
        }
    }

    #[test]
    fn folding_is_overflow_safe() {
        let e = Expr::Add(
            Box::new(Expr::Const(i64::MAX)),
            Box::new(Expr::Const(i64::MAX)),
        );
        assert_eq!(fold_expr(e.clone()), e, "overflowing add must not fold");
    }

    #[test]
    fn untouched_program_reports_no_change() {
        let src = "var i, n; assume n >= 0; i = 0; while (i < n) { i = i + 1; }";
        let mut p = parse_program(src).unwrap();
        assert!(!simplify(&mut p));
        assert_eq!(p, parse_program(src).unwrap());
    }
}
