//! IR pre-optimization: shrink the program before any engine runs.
//!
//! Analysis cost is driven by CFG size and variable count — every program
//! variable is an LP column per cut point in the Farkas encoding, an SMT
//! dimension in the extremal counterexample search, and one fresh merge
//! temporary per branching construct in the large-block encoding. This
//! module rewrites a parsed [`Program`] once, upstream of every engine, so
//! that no CEGIS iteration of any racing engine pays for dead dimensions:
//!
//! 1. [`merge`] — unreachable-code elimination and straight-line block
//!    merging (constant condition folding, `skip`/no-op removal, merging of
//!    adjacent `assume` statements, collapse of branch constructs with a
//!    single live branch);
//! 2. [`constprop`] — forward constant propagation of affine assignments:
//!    `x := c` reaching a use with no intervening havoc or loop join folds
//!    into guards and updates, then dies;
//! 3. [`liveness`] — backward liveness with dead-variable elimination:
//!    assignments to variables that no later guard can observe are deleted
//!    (termination only depends on the guards a run evaluates, so exit
//!    liveness is empty — liveness is relative to the cut-point guards, not
//!    to program exit values);
//! 4. compaction — variables that survive no retained statement or guard
//!    are projected out and the remainder renumbered densely (CFG nodes are
//!    renumbered implicitly: both the [`crate::Cfg`] and the
//!    [`crate::TransitionSystem`] are rebuilt from the optimized AST).
//!
//! Every run records a [`Provenance`] map from optimized variable indices
//! back to the original declaration, so rankings, preconditions and
//! counterexamples can be translated back to source terms before they reach
//! user-visible reports.
//!
//! The passes only ever *remove* behavior-irrelevant structure: a deleted
//! assignment targets a variable no subsequent guard can observe, and a
//! folded condition is constant on every reachable state. Any retained
//! statement or guard refers only to retained variables, so the optimized
//! program is the exact projection of the original onto the kept variables
//! and the two terminate on exactly the same inputs.

use crate::ast::{Cond, Expr, Program, Stmt, VarId};
use termite_linalg::QVector;

pub mod constprop;
pub mod liveness;
pub mod merge;

/// Version fingerprint of the pass pipeline. Cache keys incorporate this
/// string (see `termite-driver`), so cached verdicts computed under one
/// pipeline are never served across pass changes. Bump it whenever a pass
/// is added, removed, reordered or changes its rewrite behavior.
pub const OPT_PIPELINE_VERSION: &str = "ir-opt-1";

/// Upper bound on simplify→propagate→eliminate rounds; each round either
/// shrinks the program or is the last, so this is a safety net, not a
/// tuning knob.
const MAX_ROUNDS: usize = 8;

/// Map from the optimized program's variables back to the original ones.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Provenance {
    /// Variable names of the *original* program, by original index.
    original_vars: Vec<String>,
    /// `kept[new_index] = original_index`, strictly increasing.
    kept: Vec<VarId>,
}

impl Provenance {
    /// The identity map over the given variable list (what a no-op
    /// optimization run produces).
    pub fn identity(vars: &[String]) -> Provenance {
        Provenance {
            original_vars: vars.to_vec(),
            kept: (0..vars.len()).collect(),
        }
    }

    /// Number of variables of the original program.
    pub fn num_original_vars(&self) -> usize {
        self.original_vars.len()
    }

    /// Variable names of the original program.
    pub fn original_var_names(&self) -> &[String] {
        &self.original_vars
    }

    /// The original index of optimized variable `new`.
    pub fn original_of(&self, new: VarId) -> VarId {
        self.kept[new]
    }

    /// The retained original indices, in optimized order.
    pub fn kept(&self) -> &[VarId] {
        &self.kept
    }

    /// `true` when optimization kept every variable in place (translation
    /// back to source terms is then a no-op).
    pub fn is_identity(&self) -> bool {
        self.kept.len() == self.original_vars.len()
    }

    /// Scatters a coefficient vector over the optimized variables into the
    /// original variable space, placing `0` at every eliminated index — the
    /// translation applied to ranking-function rows, precondition
    /// constraints and counterexample vectors before they reach reports.
    pub fn scatter(&self, coeffs: &QVector) -> QVector {
        debug_assert_eq!(coeffs.dim(), self.kept.len());
        let mut out = vec![termite_num::Rational::from(0); self.original_vars.len()];
        for (new, &old) in self.kept.iter().enumerate() {
            out[old] = coeffs.entries()[new].clone();
        }
        QVector::from_vec(out)
    }
}

/// Size counters of one optimization run, reported through
/// `SynthesisStats` as `ir_nodes_before/after` and `ir_vars_before/after`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OptStats {
    /// CFG nodes of the program as parsed.
    pub nodes_before: usize,
    /// CFG nodes after the pipeline.
    pub nodes_after: usize,
    /// Declared variables as parsed.
    pub vars_before: usize,
    /// Variables after dead-variable elimination and compaction.
    pub vars_after: usize,
}

/// Result of [`optimize`]: the rewritten program, the provenance map back
/// to source variables, and the size counters.
#[derive(Clone, Debug)]
pub struct Optimized {
    /// The optimized program (same name as the input).
    pub program: Program,
    /// Optimized-variable ↔ original-variable map.
    pub provenance: Provenance,
    /// Before/after size counters.
    pub stats: OptStats,
}

/// Runs the full pass pipeline on a program.
pub fn optimize(program: &Program) -> Optimized {
    let nodes_before = program.to_cfg().num_nodes();
    let vars_before = program.num_vars();
    let mut p = program.clone();
    for _ in 0..MAX_ROUNDS {
        let mut changed = merge::simplify(&mut p);
        changed |= constprop::propagate(&mut p);
        // Propagation can expose new constant conditions; fold them before
        // liveness so a whole `if (5 > 10) …` arm dies in the same round.
        changed |= merge::simplify(&mut p);
        changed |= liveness::eliminate_dead(&mut p);
        if !changed {
            break;
        }
    }
    let provenance = compact(&mut p);
    let stats = OptStats {
        nodes_before,
        nodes_after: p.to_cfg().num_nodes(),
        vars_before,
        vars_after: p.num_vars(),
    };
    Optimized {
        program: p,
        provenance,
        stats,
    }
}

/// Drops variables no retained statement or guard mentions and renumbers
/// the survivors densely, returning the provenance map.
fn compact(program: &mut Program) -> Provenance {
    let n = program.num_vars();
    let mut used = vec![false; n];
    if let Some(init) = &program.init {
        mark_cond(init, &mut used);
    }
    mark_stmts(&program.body, &mut used);
    let kept: Vec<VarId> = (0..n).filter(|&v| used[v]).collect();
    let provenance = Provenance {
        original_vars: program.vars.clone(),
        kept: kept.clone(),
    };
    if provenance.is_identity() {
        return provenance;
    }
    let mut renumber = vec![usize::MAX; n];
    for (new, &old) in kept.iter().enumerate() {
        renumber[old] = new;
    }
    program.vars = kept.iter().map(|&v| program.vars[v].clone()).collect();
    if let Some(init) = &mut program.init {
        renumber_cond(init, &renumber);
    }
    renumber_stmts(&mut program.body, &renumber);
    provenance
}

fn mark_expr(e: &Expr, used: &mut [bool]) {
    match e {
        Expr::Const(_) | Expr::Nondet => {}
        Expr::Var(v) => used[*v] = true,
        Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) => {
            mark_expr(a, used);
            mark_expr(b, used);
        }
        Expr::Neg(a) => mark_expr(a, used),
    }
}

fn mark_cond(c: &Cond, used: &mut [bool]) {
    match c {
        Cond::True | Cond::False | Cond::Nondet => {}
        Cond::Cmp(a, _, b) => {
            mark_expr(a, used);
            mark_expr(b, used);
        }
        Cond::And(cs) | Cond::Or(cs) => cs.iter().for_each(|c| mark_cond(c, used)),
        Cond::Not(c) => mark_cond(c, used),
    }
}

fn mark_stmts(stmts: &[Stmt], used: &mut [bool]) {
    for s in stmts {
        match s {
            Stmt::Skip => {}
            Stmt::Assign(v, e) => {
                used[*v] = true;
                mark_expr(e, used);
            }
            Stmt::Assume(c) => mark_cond(c, used),
            Stmt::If(c, a, b) => {
                mark_cond(c, used);
                mark_stmts(a, used);
                mark_stmts(b, used);
            }
            Stmt::Choice(branches) => branches.iter().for_each(|b| mark_stmts(b, used)),
            Stmt::While(c, body) => {
                mark_cond(c, used);
                mark_stmts(body, used);
            }
        }
    }
}

fn renumber_expr(e: &mut Expr, map: &[usize]) {
    match e {
        Expr::Const(_) | Expr::Nondet => {}
        Expr::Var(v) => *v = map[*v],
        Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) => {
            renumber_expr(a, map);
            renumber_expr(b, map);
        }
        Expr::Neg(a) => renumber_expr(a, map),
    }
}

fn renumber_cond(c: &mut Cond, map: &[usize]) {
    match c {
        Cond::True | Cond::False | Cond::Nondet => {}
        Cond::Cmp(a, _, b) => {
            renumber_expr(a, map);
            renumber_expr(b, map);
        }
        Cond::And(cs) | Cond::Or(cs) => cs.iter_mut().for_each(|c| renumber_cond(c, map)),
        Cond::Not(c) => renumber_cond(c, map),
    }
}

fn renumber_stmts(stmts: &mut [Stmt], map: &[usize]) {
    for s in stmts {
        match s {
            Stmt::Skip => {}
            Stmt::Assign(v, e) => {
                *v = map[*v];
                renumber_expr(e, map);
            }
            Stmt::Assume(c) => renumber_cond(c, map),
            Stmt::If(c, a, b) => {
                renumber_cond(c, map);
                renumber_stmts(a, map);
                renumber_stmts(b, map);
            }
            Stmt::Choice(branches) => branches.iter_mut().for_each(|b| renumber_stmts(b, map)),
            Stmt::While(c, body) => {
                renumber_cond(c, map);
                renumber_stmts(body, map);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn opt(src: &str) -> Optimized {
        optimize(&parse_program(src).unwrap())
    }

    #[test]
    fn dead_padding_is_projected_out() {
        let o = opt("var x, d0, d1, c0; assume x >= 0; \
             c0 = 7; d0 = c0 + x; d1 = d0 + d0; \
             while (x > 0) { x = x - 1; d0 = d0 + 1; }");
        assert_eq!(o.program.vars, vec!["x".to_string()]);
        assert_eq!(o.stats.vars_before, 4);
        assert_eq!(o.stats.vars_after, 1);
        assert!(o.stats.nodes_after < o.stats.nodes_before);
        assert_eq!(o.provenance.kept(), &[0]);
        assert_eq!(o.provenance.original_var_names().len(), 4);
    }

    #[test]
    fn live_variables_survive_untouched() {
        let src = "var i, n; assume n >= 0; i = 0; while (i < n) { i = i + 1; }";
        let original = parse_program(src).unwrap();
        let o = opt(src);
        assert_eq!(o.program, original, "nothing to optimize must be a no-op");
        assert!(o.provenance.is_identity());
        assert_eq!(o.stats.nodes_before, o.stats.nodes_after);
    }

    #[test]
    fn transitively_dead_chains_die() {
        // d2 is dead, which kills d1's only use, which kills d0's.
        let o = opt("var x, d0, d1, d2; assume x >= 0; \
             while (x > 0) { x = x - 1; d0 = x; d1 = d0 + 1; d2 = d1 + d0; }");
        assert_eq!(o.program.vars, vec!["x".to_string()]);
    }

    #[test]
    fn constant_temporaries_fold_into_guards_and_die() {
        let o = opt("var x, c; assume x >= 0; c = 2; \
             while (x > 0) { x = x - c; }");
        assert_eq!(o.program.vars, vec!["x".to_string()]);
        // The loop body must now subtract the literal 2.
        let Stmt::While(_, body) = &o.program.body[1] else {
            panic!("expected the while to survive: {:?}", o.program.body);
        };
        assert_eq!(
            body[0],
            Stmt::Assign(
                0,
                Expr::Sub(Box::new(Expr::Var(0)), Box::new(Expr::Const(2)))
            )
        );
    }

    #[test]
    fn scatter_translates_back_to_source_indices() {
        let o = opt("var d, x, e, y; assume x >= 0 && y >= 0; \
             d = 1; e = 2; \
             while (x > 0) { x = x - 1; y = y + 1; }");
        assert_eq!(o.provenance.kept(), &[1, 3]);
        let small = QVector::from_i64(&[-1, 5]);
        let big = o.provenance.scatter(&small);
        assert_eq!(big, QVector::from_i64(&[0, -1, 0, 5]));
    }

    #[test]
    fn guard_uses_keep_variables_alive() {
        // d feeds a guard, so it (and its whole def chain) must survive.
        let o = opt("var x, d; assume x >= 0; \
             while (x > 0) { d = x; assume d >= 0; x = x - 1; }");
        assert_eq!(o.program.vars.len(), 2);
        assert!(o.provenance.is_identity());
    }

    #[test]
    fn version_fingerprint_is_stable_and_nonempty() {
        assert!(!OPT_PIPELINE_VERSION.is_empty());
    }
}
