//! Lexer and recursive-descent parser for the mini language.
//!
//! ```text
//! program := "var" ident ("," ident)* ";" stmt*
//! stmt    := "assume" cond ";"
//!          | "skip" ";"
//!          | ident "=" expr ";"
//!          | "if" "(" cond ")" block ("else" block)?
//!          | "while" "(" cond ")" block
//!          | "choice" block ("or" block)+
//! block   := "{" stmt* "}"
//! cond    := and-or combinations of comparisons, "true", "false",
//!            "nondet()" and "!"-negation
//! expr    := affine integer expressions with "nondet()"
//! ```
//!
//! Line comments start with `//` or `#`.

use crate::ast::{CmpOp, Cond, Expr, Program, Stmt};
use std::fmt;

/// Error produced when parsing fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable message.
    pub message: String,
    /// Byte offset in the input at which the error was detected.
    pub position: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Ident(String),
    Num(i64),
    KwVar,
    KwAssume,
    KwSkip,
    KwIf,
    KwElse,
    KwWhile,
    KwChoice,
    KwOr,
    KwTrue,
    KwFalse,
    KwNondet,
    LParen,
    RParen,
    LBrace,
    RBrace,
    Semi,
    Comma,
    Assign,
    Plus,
    Minus,
    Star,
    EqEq,
    Ne,
    Le,
    Lt,
    Ge,
    Gt,
    AndAnd,
    OrOr,
    Bang,
    Eof,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        loop {
            while self.pos < self.src.len() && (self.src[self.pos] as char).is_whitespace() {
                self.pos += 1;
            }
            // line comments
            if self.pos + 1 < self.src.len() && &self.src[self.pos..self.pos + 2] == b"//" {
                while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                    self.pos += 1;
                }
                continue;
            }
            if self.pos < self.src.len() && self.src[self.pos] == b'#' {
                while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                    self.pos += 1;
                }
                continue;
            }
            break;
        }
    }

    fn next_token(&mut self) -> Result<(Token, usize), ParseError> {
        self.skip_ws();
        let start = self.pos;
        if self.pos >= self.src.len() {
            return Ok((Token::Eof, start));
        }
        let c = self.src[self.pos] as char;
        let two = if self.pos + 1 < self.src.len() {
            Some(&self.src[self.pos..self.pos + 2])
        } else {
            None
        };
        let tok = match c {
            '(' => Some(Token::LParen),
            ')' => Some(Token::RParen),
            '{' => Some(Token::LBrace),
            '}' => Some(Token::RBrace),
            ';' => Some(Token::Semi),
            ',' => Some(Token::Comma),
            '+' => Some(Token::Plus),
            '-' => Some(Token::Minus),
            '*' => Some(Token::Star),
            _ => None,
        };
        if let Some(t) = tok {
            self.pos += 1;
            return Ok((t, start));
        }
        match two {
            Some(b"==") => {
                self.pos += 2;
                return Ok((Token::EqEq, start));
            }
            Some(b"!=") => {
                self.pos += 2;
                return Ok((Token::Ne, start));
            }
            Some(b"<=") => {
                self.pos += 2;
                return Ok((Token::Le, start));
            }
            Some(b">=") => {
                self.pos += 2;
                return Ok((Token::Ge, start));
            }
            Some(b"&&") => {
                self.pos += 2;
                return Ok((Token::AndAnd, start));
            }
            Some(b"||") => {
                self.pos += 2;
                return Ok((Token::OrOr, start));
            }
            _ => {}
        }
        match c {
            '<' => {
                self.pos += 1;
                Ok((Token::Lt, start))
            }
            '>' => {
                self.pos += 1;
                Ok((Token::Gt, start))
            }
            '=' => {
                self.pos += 1;
                Ok((Token::Assign, start))
            }
            '!' => {
                self.pos += 1;
                Ok((Token::Bang, start))
            }
            '0'..='9' => {
                let mut end = self.pos;
                while end < self.src.len() && (self.src[end] as char).is_ascii_digit() {
                    end += 1;
                }
                let text = std::str::from_utf8(&self.src[self.pos..end]).unwrap();
                let value: i64 = text.parse().map_err(|_| ParseError {
                    message: format!("integer literal out of range: {text}"),
                    position: start,
                })?;
                self.pos = end;
                Ok((Token::Num(value), start))
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut end = self.pos;
                while end < self.src.len()
                    && ((self.src[end] as char).is_ascii_alphanumeric() || self.src[end] == b'_')
                {
                    end += 1;
                }
                let text = std::str::from_utf8(&self.src[self.pos..end])
                    .unwrap()
                    .to_string();
                self.pos = end;
                let tok = match text.as_str() {
                    "var" | "int" => Token::KwVar,
                    "assume" => Token::KwAssume,
                    "skip" => Token::KwSkip,
                    "if" => Token::KwIf,
                    "else" => Token::KwElse,
                    "while" => Token::KwWhile,
                    "choice" => Token::KwChoice,
                    "or" => Token::KwOr,
                    "true" => Token::KwTrue,
                    "false" => Token::KwFalse,
                    "nondet" | "choose" | "random" => Token::KwNondet,
                    _ => Token::Ident(text),
                };
                Ok((tok, start))
            }
            other => Err(ParseError {
                message: format!("unexpected character {other:?}"),
                position: start,
            }),
        }
    }
}

struct Parser {
    tokens: Vec<(Token, usize)>,
    index: usize,
    vars: Vec<String>,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.index].0
    }

    fn pos(&self) -> usize {
        self.tokens[self.index].1
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.index].0.clone();
        if self.index + 1 < self.tokens.len() {
            self.index += 1;
        }
        t
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            position: self.pos(),
        }
    }

    fn expect(&mut self, expected: Token, what: &str) -> Result<(), ParseError> {
        if *self.peek() == expected {
            self.advance();
            Ok(())
        } else {
            Err(self.error(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn var_id(&mut self, name: &str) -> Result<usize, ParseError> {
        match self.vars.iter().position(|v| v == name) {
            Some(i) => Ok(i),
            None => Err(self.error(format!("undeclared variable `{name}`"))),
        }
    }

    fn parse_program(&mut self, name: &str) -> Result<Program, ParseError> {
        // Variable declarations: one or several `var a, b, c;` lines.
        while *self.peek() == Token::KwVar {
            self.advance();
            loop {
                match self.advance() {
                    Token::Ident(n) => {
                        if self.vars.contains(&n) {
                            return Err(self.error(format!("duplicate variable `{n}`")));
                        }
                        self.vars.push(n);
                    }
                    other => {
                        return Err(self.error(format!("expected variable name, found {other:?}")))
                    }
                }
                match self.peek() {
                    Token::Comma => {
                        self.advance();
                    }
                    Token::Semi => {
                        self.advance();
                        break;
                    }
                    other => {
                        return Err(self.error(format!("expected `,` or `;`, found {other:?}")))
                    }
                }
            }
        }
        let mut body = Vec::new();
        while *self.peek() != Token::Eof {
            body.push(self.parse_stmt()?);
        }
        Ok(Program::new(name, self.vars.clone(), None, body))
    }

    fn parse_block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect(Token::LBrace, "`{`")?;
        let mut out = Vec::new();
        while *self.peek() != Token::RBrace {
            if *self.peek() == Token::Eof {
                return Err(self.error("unexpected end of input inside block"));
            }
            out.push(self.parse_stmt()?);
        }
        self.expect(Token::RBrace, "`}`")?;
        Ok(out)
    }

    fn parse_stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek().clone() {
            Token::KwSkip => {
                self.advance();
                self.expect(Token::Semi, "`;`")?;
                Ok(Stmt::Skip)
            }
            Token::KwAssume => {
                self.advance();
                let c = self.parse_cond()?;
                self.expect(Token::Semi, "`;`")?;
                Ok(Stmt::Assume(c))
            }
            Token::KwIf => {
                self.advance();
                self.expect(Token::LParen, "`(`")?;
                let c = self.parse_cond()?;
                self.expect(Token::RParen, "`)`")?;
                let then_branch = self.parse_block()?;
                let else_branch = if *self.peek() == Token::KwElse {
                    self.advance();
                    self.parse_block()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If(c, then_branch, else_branch))
            }
            Token::KwWhile => {
                self.advance();
                self.expect(Token::LParen, "`(`")?;
                let c = self.parse_cond()?;
                self.expect(Token::RParen, "`)`")?;
                let body = self.parse_block()?;
                Ok(Stmt::While(c, body))
            }
            Token::KwChoice => {
                self.advance();
                let mut branches = vec![self.parse_block()?];
                while *self.peek() == Token::KwOr {
                    self.advance();
                    branches.push(self.parse_block()?);
                }
                Ok(Stmt::Choice(branches))
            }
            Token::Ident(name) => {
                self.advance();
                let v = self.var_id(&name)?;
                self.expect(Token::Assign, "`=`")?;
                let e = self.parse_expr()?;
                self.expect(Token::Semi, "`;`")?;
                Ok(Stmt::Assign(v, e))
            }
            other => Err(self.error(format!("expected a statement, found {other:?}"))),
        }
    }

    // conditions -----------------------------------------------------------

    fn parse_cond(&mut self) -> Result<Cond, ParseError> {
        let mut disjuncts = vec![self.parse_cond_and()?];
        while *self.peek() == Token::OrOr {
            self.advance();
            disjuncts.push(self.parse_cond_and()?);
        }
        Ok(if disjuncts.len() == 1 {
            disjuncts.pop().unwrap()
        } else {
            Cond::Or(disjuncts)
        })
    }

    fn parse_cond_and(&mut self) -> Result<Cond, ParseError> {
        let mut conjuncts = vec![self.parse_cond_atom()?];
        while *self.peek() == Token::AndAnd {
            self.advance();
            conjuncts.push(self.parse_cond_atom()?);
        }
        Ok(if conjuncts.len() == 1 {
            conjuncts.pop().unwrap()
        } else {
            Cond::And(conjuncts)
        })
    }

    fn parse_cond_atom(&mut self) -> Result<Cond, ParseError> {
        match self.peek().clone() {
            Token::KwTrue => {
                self.advance();
                Ok(Cond::True)
            }
            Token::KwFalse => {
                self.advance();
                Ok(Cond::False)
            }
            Token::Bang => {
                self.advance();
                Ok(Cond::Not(Box::new(self.parse_cond_atom()?)))
            }
            Token::KwNondet => {
                self.advance();
                self.expect(Token::LParen, "`(`")?;
                self.expect(Token::RParen, "`)`")?;
                Ok(Cond::Nondet)
            }
            Token::LParen => {
                self.advance();
                let c = self.parse_cond()?;
                self.expect(Token::RParen, "`)`")?;
                Ok(c)
            }
            _ => {
                let lhs = self.parse_expr()?;
                let op = match self.advance() {
                    Token::EqEq => CmpOp::Eq,
                    Token::Ne => CmpOp::Ne,
                    Token::Le => CmpOp::Le,
                    Token::Lt => CmpOp::Lt,
                    Token::Ge => CmpOp::Ge,
                    Token::Gt => CmpOp::Gt,
                    other => {
                        return Err(
                            self.error(format!("expected a comparison operator, found {other:?}"))
                        )
                    }
                };
                let rhs = self.parse_expr()?;
                Ok(Cond::Cmp(lhs, op, rhs))
            }
        }
    }

    // expressions ----------------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        let mut acc = self.parse_term()?;
        loop {
            match self.peek() {
                Token::Plus => {
                    self.advance();
                    acc = Expr::Add(Box::new(acc), Box::new(self.parse_term()?));
                }
                Token::Minus => {
                    self.advance();
                    acc = Expr::Sub(Box::new(acc), Box::new(self.parse_term()?));
                }
                _ => return Ok(acc),
            }
        }
    }

    fn parse_term(&mut self) -> Result<Expr, ParseError> {
        let mut acc = self.parse_factor()?;
        while *self.peek() == Token::Star {
            self.advance();
            acc = Expr::Mul(Box::new(acc), Box::new(self.parse_factor()?));
        }
        Ok(acc)
    }

    fn parse_factor(&mut self) -> Result<Expr, ParseError> {
        match self.advance() {
            Token::Num(n) => Ok(Expr::Const(n)),
            Token::Minus => Ok(Expr::Neg(Box::new(self.parse_factor()?))),
            Token::Ident(name) => {
                let v = self.var_id(&name)?;
                Ok(Expr::Var(v))
            }
            Token::KwNondet => {
                self.expect(Token::LParen, "`(`")?;
                self.expect(Token::RParen, "`)`")?;
                Ok(Expr::Nondet)
            }
            Token::LParen => {
                let e = self.parse_expr()?;
                self.expect(Token::RParen, "`)`")?;
                Ok(e)
            }
            other => Err(self.error(format!("expected an expression, found {other:?}"))),
        }
    }
}

/// Parses a program written in the mini language.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax error encountered.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    parse_named_program(src, "program")
}

/// Parses a program and gives it an explicit name (used by benchmark suites).
pub fn parse_named_program(src: &str, name: &str) -> Result<Program, ParseError> {
    let mut lexer = Lexer::new(src);
    let mut tokens = Vec::new();
    loop {
        let (t, p) = lexer.next_token()?;
        let done = t == Token::Eof;
        tokens.push((t, p));
        if done {
            break;
        }
    }
    let mut parser = Parser {
        tokens,
        index: 0,
        vars: Vec::new(),
    };
    parser.parse_program(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_example_1() {
        let p = parse_program(
            r#"
            var x, y;
            assume x == 5 && y == 10;
            while (true) {
                choice {
                    assume x <= 10 && y >= 0;
                    x = x + 1;
                    y = y - 1;
                } or {
                    assume x >= 0 && y >= 0;
                    x = x - 1;
                    y = y - 1;
                }
            }
            "#,
        )
        .unwrap();
        assert_eq!(p.vars, vec!["x", "y"]);
        assert_eq!(p.body.len(), 2);
        assert_eq!(p.num_loops(), 1);
        match &p.body[1] {
            Stmt::While(Cond::True, body) => match &body[0] {
                Stmt::Choice(branches) => assert_eq!(branches.len(), 2),
                other => panic!("expected choice, got {other:?}"),
            },
            other => panic!("expected while, got {other:?}"),
        }
    }

    #[test]
    fn parse_nested_loops_and_if_else() {
        let p = parse_program(
            r#"
            var i, j;
            while (i < 5) {
                j = 0;
                while (i > 2 && j <= 9) {
                    j = j + 1;
                }
                i = i + 1;
            }
            if (i >= 5) { skip; } else { i = -i; }
            "#,
        )
        .unwrap();
        assert_eq!(p.num_loops(), 2);
        assert_eq!(p.body.len(), 2);
    }

    #[test]
    fn parse_expressions_with_precedence() {
        let p = parse_program("var x, y; x = 2 * y + 3 - -x;").unwrap();
        match &p.body[0] {
            Stmt::Assign(0, e) => {
                // (2*y + 3) - (-x)
                match e {
                    Expr::Sub(lhs, rhs) => {
                        assert!(matches!(**lhs, Expr::Add(_, _)));
                        assert!(matches!(**rhs, Expr::Neg(_)));
                    }
                    other => panic!("unexpected expression {other:?}"),
                }
            }
            other => panic!("unexpected statement {other:?}"),
        }
    }

    #[test]
    fn parse_nondet_and_comments() {
        let p = parse_program(
            r#"
            // a classic two-phase loop
            var x, n;
            n = nondet();         # havoc
            while (x != n) {
                if (nondet()) { x = x + 1; } else { x = x - 1; }
            }
            "#,
        )
        .unwrap();
        assert_eq!(p.num_loops(), 1);
        assert!(matches!(p.body[0], Stmt::Assign(1, Expr::Nondet)));
    }

    #[test]
    fn error_on_undeclared_variable() {
        let err = parse_program("var x; y = 3;").unwrap_err();
        assert!(err.message.contains("undeclared"));
    }

    #[test]
    fn error_on_missing_semicolon() {
        assert!(parse_program("var x; x = 3").is_err());
    }

    #[test]
    fn error_on_garbage() {
        assert!(parse_program("var x; x = @;").is_err());
        assert!(parse_program("while (true) {").is_err());
    }

    #[test]
    fn keywords_alias() {
        // `int` is accepted as an alias of `var`, `choose`/`random` as `nondet`.
        let p = parse_program("int x; x = choose();").unwrap();
        assert!(matches!(p.body[0], Stmt::Assign(0, Expr::Nondet)));
    }
}
