//! Affine views of expressions and conditions.
//!
//! The analyses only deal with *affine* integer expressions. This module
//! converts syntactic [`Expr`]s and [`Cond`]s into:
//!
//! * [`AffineExpr`] — `Σ coeff_i · var_i + constant` over the program
//!   variables;
//! * conjunctive-normal building blocks ([`LinearConstraint`], used by the
//!   node-level CFG and the polyhedral invariant generator);
//! * [`termite_smt::Formula`]s (used by the large-block encoding).

use crate::ast::{CmpOp, Cond, Expr};
use termite_linalg::QVector;
use termite_num::Rational;
use termite_smt::{Formula, LinExpr, TermVar};

/// An affine expression `coeffs · x + constant` over the program variables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AffineExpr {
    /// One coefficient per program variable.
    pub coeffs: QVector,
    /// Constant offset.
    pub constant: Rational,
}

impl AffineExpr {
    /// The constant expression `c`.
    pub fn constant(num_vars: usize, c: i64) -> Self {
        AffineExpr {
            coeffs: QVector::zeros(num_vars),
            constant: Rational::from(c),
        }
    }

    /// The expression `x_v`.
    pub fn var(num_vars: usize, v: usize) -> Self {
        AffineExpr {
            coeffs: QVector::unit(num_vars, v),
            constant: Rational::zero(),
        }
    }

    /// Pointwise sum.
    pub fn add(&self, other: &AffineExpr) -> AffineExpr {
        AffineExpr {
            coeffs: &self.coeffs + &other.coeffs,
            constant: &self.constant + &other.constant,
        }
    }

    /// Pointwise difference.
    pub fn sub(&self, other: &AffineExpr) -> AffineExpr {
        AffineExpr {
            coeffs: &self.coeffs - &other.coeffs,
            constant: &self.constant - &other.constant,
        }
    }

    /// Scaling by a rational factor.
    pub fn scale(&self, k: &Rational) -> AffineExpr {
        AffineExpr {
            coeffs: self.coeffs.scale(k),
            constant: &self.constant * k,
        }
    }

    /// Negation.
    pub fn neg(&self) -> AffineExpr {
        self.scale(&-Rational::one())
    }

    /// `true` if the expression has no variable part.
    pub fn is_constant(&self) -> bool {
        self.coeffs.is_zero()
    }

    /// Tries to view a syntactic expression as an affine expression.
    ///
    /// Returns `None` when the expression contains `nondet()` or a non-affine
    /// product of two variables.
    pub fn from_expr(e: &Expr, num_vars: usize) -> Option<AffineExpr> {
        match e {
            Expr::Const(c) => Some(AffineExpr::constant(num_vars, *c)),
            Expr::Var(v) => Some(AffineExpr::var(num_vars, *v)),
            Expr::Add(a, b) => {
                Some(AffineExpr::from_expr(a, num_vars)?.add(&AffineExpr::from_expr(b, num_vars)?))
            }
            Expr::Sub(a, b) => {
                Some(AffineExpr::from_expr(a, num_vars)?.sub(&AffineExpr::from_expr(b, num_vars)?))
            }
            Expr::Neg(a) => Some(AffineExpr::from_expr(a, num_vars)?.neg()),
            Expr::Mul(a, b) => {
                let ea = AffineExpr::from_expr(a, num_vars)?;
                let eb = AffineExpr::from_expr(b, num_vars)?;
                if ea.is_constant() {
                    Some(eb.scale(&ea.constant))
                } else if eb.is_constant() {
                    Some(ea.scale(&eb.constant))
                } else {
                    None
                }
            }
            Expr::Nondet => None,
        }
    }

    /// Converts into an SMT linear expression, mapping program variable `i`
    /// to the given theory variable.
    pub fn to_linexpr(&self, var_of: &dyn Fn(usize) -> LinExpr) -> LinExpr {
        let mut out = LinExpr::constant(self.constant.clone());
        for (i, c) in self.coeffs.iter().enumerate() {
            if !c.is_zero() {
                out = out + var_of(i).scale(c);
            }
        }
        out
    }
}

/// A linear constraint `coeffs · x ≥ rhs` over the program variables
/// (the convex building block of CFG guards).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinearConstraint {
    /// One coefficient per program variable.
    pub coeffs: QVector,
    /// Right-hand side.
    pub rhs: Rational,
}

impl LinearConstraint {
    /// The constraint `e ≥ 0` for an affine expression `e`.
    pub fn expr_nonneg(e: &AffineExpr) -> Self {
        LinearConstraint {
            coeffs: e.coeffs.clone(),
            rhs: -&e.constant,
        }
    }

    /// Converts to a polyhedral constraint.
    pub fn to_polyhedral(&self) -> termite_polyhedra::Constraint {
        termite_polyhedra::Constraint::ge(self.coeffs.clone(), self.rhs.clone())
    }

    /// Checks the constraint at an integer point.
    pub fn satisfied_by(&self, point: &QVector) -> bool {
        self.coeffs.dot(point) >= self.rhs
    }
}

/// Converts a condition into disjunctive normal form over linear constraints
/// (used for the node-level CFG, whose edges must carry convex guards).
///
/// `negate` asks for the DNF of the negation. Comparisons involving
/// `nondet()` and the non-deterministic condition are over-approximated by
/// `true` (sound for invariant generation).
pub fn cond_to_dnf(cond: &Cond, num_vars: usize, negate: bool) -> Vec<Vec<LinearConstraint>> {
    match (cond, negate) {
        (Cond::True, false) | (Cond::False, true) | (Cond::Nondet, _) => vec![Vec::new()],
        (Cond::True, true) | (Cond::False, false) => Vec::new(),
        (Cond::Not(inner), _) => cond_to_dnf(inner, num_vars, !negate),
        (Cond::And(cs), false) | (Cond::Or(cs), true) => {
            // Conjunction: cross product of the children's DNFs.
            let mut acc: Vec<Vec<LinearConstraint>> = vec![Vec::new()];
            for c in cs {
                let child = cond_to_dnf(c, num_vars, negate);
                let mut next = Vec::new();
                for a in &acc {
                    for b in &child {
                        let mut merged = a.clone();
                        merged.extend(b.iter().cloned());
                        next.push(merged);
                    }
                }
                acc = next;
            }
            acc
        }
        (Cond::And(cs), true) | (Cond::Or(cs), false) => {
            // Disjunction: union of the children's DNFs.
            let mut acc = Vec::new();
            for c in cs {
                acc.extend(cond_to_dnf(c, num_vars, negate));
            }
            acc
        }
        (Cond::Cmp(lhs, op, rhs), _) => cmp_to_dnf(lhs, *op, rhs, num_vars, negate),
    }
}

/// Converts a comparison into the DNF of linear constraints (integer
/// semantics: strict comparisons are tightened by one).
fn cmp_to_dnf(
    lhs: &Expr,
    op: CmpOp,
    rhs: &Expr,
    num_vars: usize,
    negate: bool,
) -> Vec<Vec<LinearConstraint>> {
    let (Some(el), Some(er)) = (
        AffineExpr::from_expr(lhs, num_vars),
        AffineExpr::from_expr(rhs, num_vars),
    ) else {
        // Non-affine or nondeterministic comparison: over-approximate by true.
        return vec![Vec::new()];
    };
    let d = el.sub(&er); // lhs - rhs
    let ge = |e: AffineExpr, bound: i64| -> LinearConstraint {
        // e >= bound
        LinearConstraint {
            coeffs: e.coeffs.clone(),
            rhs: &Rational::from(bound) - &e.constant,
        }
    };
    let op = if negate {
        match op {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Ge => CmpOp::Lt,
            CmpOp::Gt => CmpOp::Le,
        }
    } else {
        op
    };
    match op {
        CmpOp::Eq => vec![vec![ge(d.clone(), 0), ge(d.neg(), 0)]],
        CmpOp::Ne => vec![vec![ge(d.clone(), 1)], vec![ge(d.neg(), 1)]],
        CmpOp::Ge => vec![vec![ge(d, 0)]],
        CmpOp::Gt => vec![vec![ge(d, 1)]],
        CmpOp::Le => vec![vec![ge(d.neg(), 0)]],
        CmpOp::Lt => vec![vec![ge(d.neg(), 1)]],
    }
}

/// Converts a condition into an SMT formula, mapping program variable `i` to
/// the linear expression `state(i)` (the current symbolic value of the
/// variable). Non-deterministic conditions become `true` in both polarities
/// (each evaluation is an independent coin flip).
pub fn cond_to_formula(
    cond: &Cond,
    state: &dyn Fn(usize) -> LinExpr,
    num_vars: usize,
    negate: bool,
) -> Formula {
    match (cond, negate) {
        (Cond::True, false) | (Cond::False, true) | (Cond::Nondet, _) => Formula::True,
        (Cond::True, true) | (Cond::False, false) => Formula::False,
        (Cond::Not(inner), _) => cond_to_formula(inner, state, num_vars, !negate),
        (Cond::And(cs), false) | (Cond::Or(cs), true) => Formula::and(
            cs.iter()
                .map(|c| cond_to_formula(c, state, num_vars, negate))
                .collect(),
        ),
        (Cond::And(cs), true) | (Cond::Or(cs), false) => Formula::or(
            cs.iter()
                .map(|c| cond_to_formula(c, state, num_vars, negate))
                .collect(),
        ),
        (Cond::Cmp(lhs, op, rhs), _) => {
            let (Some(el), Some(er)) = (
                AffineExpr::from_expr(lhs, num_vars),
                AffineExpr::from_expr(rhs, num_vars),
            ) else {
                return Formula::True;
            };
            let l = el.to_linexpr(state);
            let r = er.to_linexpr(state);
            let op = if negate {
                match op {
                    CmpOp::Eq => CmpOp::Ne,
                    CmpOp::Ne => CmpOp::Eq,
                    CmpOp::Le => CmpOp::Gt,
                    CmpOp::Lt => CmpOp::Ge,
                    CmpOp::Ge => CmpOp::Lt,
                    CmpOp::Gt => CmpOp::Le,
                }
            } else {
                *op
            };
            match op {
                CmpOp::Eq => Formula::eq_expr(l, r),
                CmpOp::Ne => Formula::neq(l, r),
                CmpOp::Le => Formula::le(l, r),
                CmpOp::Lt => Formula::lt(l, r),
                CmpOp::Ge => Formula::ge(l, r),
                CmpOp::Gt => Formula::gt(l, r),
            }
        }
    }
}

/// Identity mapping from program variables to theory variables `0..n`.
pub fn identity_state(_num_vars: usize) -> impl Fn(usize) -> LinExpr {
    |i| LinExpr::var(TermVar(i))
}

/// Converts a polyhedron over the program variables into an SMT formula,
/// mapping program variable `i` to `var_of(i)` (the pre- or post-state theory
/// variable, depending on the caller).
pub fn polyhedron_to_formula(
    p: &termite_polyhedra::Polyhedron,
    var_of: &dyn Fn(usize) -> LinExpr,
) -> Formula {
    use termite_polyhedra::ConstraintKind;
    let mut conj = Vec::new();
    for c in p.constraints() {
        let mut lhs = LinExpr::zero();
        for (i, coeff) in c.coeffs.iter().enumerate() {
            if !coeff.is_zero() {
                lhs = lhs + var_of(i).scale(coeff);
            }
        }
        let rhs = LinExpr::constant(c.rhs.clone());
        match c.kind {
            ConstraintKind::GreaterEq => conj.push(Formula::ge(lhs, rhs)),
            ConstraintKind::Equality => conj.push(Formula::eq_expr(lhs, rhs)),
        }
    }
    Formula::and(conj)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(n: i64) -> Rational {
        Rational::from(n)
    }

    #[test]
    fn affine_from_expr() {
        // 2*(x - 3) + y  ==>  2x + y - 6
        let e = Expr::Add(
            Box::new(Expr::Mul(
                Box::new(Expr::Const(2)),
                Box::new(Expr::Sub(Box::new(Expr::Var(0)), Box::new(Expr::Const(3)))),
            )),
            Box::new(Expr::Var(1)),
        );
        let a = AffineExpr::from_expr(&e, 2).unwrap();
        assert_eq!(a.coeffs, QVector::from_i64(&[2, 1]));
        assert_eq!(a.constant, q(-6));
    }

    #[test]
    fn nonaffine_rejected() {
        let e = Expr::Mul(Box::new(Expr::Var(0)), Box::new(Expr::Var(1)));
        assert!(AffineExpr::from_expr(&e, 2).is_none());
        assert!(AffineExpr::from_expr(&Expr::Nondet, 2).is_none());
    }

    #[test]
    fn dnf_of_comparison() {
        // x < 5  ==>  -x >= -4
        let c = Cond::Cmp(Expr::Var(0), CmpOp::Lt, Expr::Const(5));
        let dnf = cond_to_dnf(&c, 1, false);
        assert_eq!(dnf.len(), 1);
        assert_eq!(dnf[0].len(), 1);
        assert!(dnf[0][0].satisfied_by(&QVector::from_i64(&[4])));
        assert!(!dnf[0][0].satisfied_by(&QVector::from_i64(&[5])));
        // negation: x >= 5
        let neg = cond_to_dnf(&c, 1, true);
        assert!(neg[0][0].satisfied_by(&QVector::from_i64(&[5])));
        assert!(!neg[0][0].satisfied_by(&QVector::from_i64(&[4])));
    }

    #[test]
    fn dnf_of_disjunction_and_negation() {
        // !(x >= 0 && y >= 0)  ==>  x <= -1  ∨  y <= -1
        let c = Cond::Not(Box::new(Cond::And(vec![
            Cond::Cmp(Expr::Var(0), CmpOp::Ge, Expr::Const(0)),
            Cond::Cmp(Expr::Var(1), CmpOp::Ge, Expr::Const(0)),
        ])));
        let dnf = cond_to_dnf(&c, 2, false);
        assert_eq!(dnf.len(), 2);
        for conj in &dnf {
            assert_eq!(conj.len(), 1);
        }
    }

    #[test]
    fn dnf_of_equality() {
        let c = Cond::Cmp(Expr::Var(0), CmpOp::Eq, Expr::Const(3));
        let dnf = cond_to_dnf(&c, 1, false);
        assert_eq!(dnf.len(), 1);
        assert_eq!(dnf[0].len(), 2);
        let ne = cond_to_dnf(&c, 1, true);
        assert_eq!(ne.len(), 2);
    }

    #[test]
    fn formula_of_condition() {
        let c = Cond::Or(vec![
            Cond::Cmp(Expr::Var(0), CmpOp::Gt, Expr::Const(0)),
            Cond::Cmp(Expr::Var(1), CmpOp::Eq, Expr::Const(2)),
        ]);
        let f = cond_to_formula(&c, &identity_state(2), 2, false);
        let assign_true = |v: TermVar| if v.0 == 0 { q(1) } else { q(0) };
        let assign_false = |_v: TermVar| q(0);
        assert!(f.eval(&assign_true));
        assert!(!f.eval(&assign_false));
        let neg = cond_to_formula(&c, &identity_state(2), 2, true);
        assert!(!neg.eval(&assign_true));
        assert!(neg.eval(&assign_false));
    }

    #[test]
    fn nondet_condition_is_true_in_both_polarities() {
        let f = cond_to_formula(&Cond::Nondet, &identity_state(1), 1, false);
        let g = cond_to_formula(&Cond::Nondet, &identity_state(1), 1, true);
        assert_eq!(f, Formula::True);
        assert_eq!(g, Formula::True);
        assert_eq!(cond_to_dnf(&Cond::Nondet, 1, false), vec![Vec::new()]);
        assert_eq!(cond_to_dnf(&Cond::Nondet, 1, true), vec![Vec::new()]);
    }
}
