//! Abstract syntax of the mini integer language.

use std::fmt;

/// Index of a program variable (into [`Program::vars`]).
pub type VarId = usize;

/// Integer expressions (restricted to affine forms at analysis time).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Const(i64),
    /// Program variable.
    Var(VarId),
    /// Sum of two expressions.
    Add(Box<Expr>, Box<Expr>),
    /// Difference of two expressions.
    Sub(Box<Expr>, Box<Expr>),
    /// Negation.
    Neg(Box<Expr>),
    /// Product; the analyser requires at least one factor to be constant.
    Mul(Box<Expr>, Box<Expr>),
    /// A non-deterministic integer (`nondet()`).
    Nondet,
}

/// Comparison operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<=`
    Le,
    /// `<`
    Lt,
    /// `>=`
    Ge,
    /// `>`
    Gt,
}

/// Boolean conditions over integer comparisons.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Cond {
    /// Constant truth.
    True,
    /// Constant falsity.
    False,
    /// Comparison of two expressions.
    Cmp(Expr, CmpOp, Expr),
    /// Conjunction.
    And(Vec<Cond>),
    /// Disjunction.
    Or(Vec<Cond>),
    /// Negation.
    Not(Box<Cond>),
    /// A non-deterministic Boolean (`choose()`), e.g. Listing 1 of the paper.
    Nondet,
}

/// Statements of the mini language.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stmt {
    /// `x = e;`
    Assign(VarId, Expr),
    /// `assume c;`
    Assume(Cond),
    /// `skip;`
    Skip,
    /// `if (c) { .. } else { .. }`
    If(Cond, Vec<Stmt>, Vec<Stmt>),
    /// `choice { .. } or { .. } or { .. }` — non-deterministic branching.
    Choice(Vec<Vec<Stmt>>),
    /// `while (c) { .. }`
    While(Cond, Vec<Stmt>),
}

/// A whole program: variable declarations, an initial assumption and a body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Program {
    /// Human-readable name (used by the benchmark harness).
    pub name: String,
    /// Declared variable names; indices are [`VarId`]s.
    pub vars: Vec<String>,
    /// Initial condition (`assume` at the top of the program), if any.
    pub init: Option<Cond>,
    /// Statement list.
    pub body: Vec<Stmt>,
}

impl Program {
    /// Creates a program with the given variables and body.
    pub fn new(
        name: impl Into<String>,
        vars: Vec<String>,
        init: Option<Cond>,
        body: Vec<Stmt>,
    ) -> Self {
        Program {
            name: name.into(),
            vars,
            init,
            body,
        }
    }

    /// Number of integer variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Looks up a variable id by name.
    pub fn var_id(&self, name: &str) -> Option<VarId> {
        self.vars.iter().position(|v| v == name)
    }

    /// Number of `while` loops in the program (= number of cut points).
    pub fn num_loops(&self) -> usize {
        fn count(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::While(_, body) => 1 + count(body),
                    Stmt::If(_, a, b) => count(a) + count(b),
                    Stmt::Choice(branches) => branches.iter().map(|b| count(b)).sum(),
                    _ => 0,
                })
                .sum()
        }
        count(&self.body)
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "program {} (vars: {})", self.name, self.vars.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_counting() {
        let p = Program::new(
            "p",
            vec!["x".into()],
            None,
            vec![Stmt::While(
                Cond::True,
                vec![Stmt::If(
                    Cond::True,
                    vec![Stmt::While(Cond::False, vec![Stmt::Skip])],
                    vec![],
                )],
            )],
        );
        assert_eq!(p.num_loops(), 2);
        assert_eq!(p.num_vars(), 1);
        assert_eq!(p.var_id("x"), Some(0));
        assert_eq!(p.var_id("y"), None);
    }
}
