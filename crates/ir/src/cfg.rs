//! Node-level control-flow automaton.
//!
//! Every edge carries a single *convex* guarded command (a conjunction of
//! linear constraints, an affine assignment, or a havoc). This fine-grained
//! representation is consumed by the polyhedral abstract interpreter
//! (`termite-invariants`), which plays the role of Aspic/Pagai in the paper's
//! toolchain. The set of loop headers forms the cut-set used by the
//! large-block encoding ([`crate::TransitionSystem`]); the `k`-th entry of
//! [`Cfg::loop_headers`] is the CFG node of cut point `k`.

use crate::affine::{cond_to_dnf, AffineExpr, LinearConstraint};
use crate::ast::{Cond, Program, Stmt, VarId};
use std::fmt;

/// Index of a CFG node.
pub type NodeId = usize;

/// The operation carried by a CFG edge.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CfgOp {
    /// A conjunction of linear constraints that must hold to take the edge.
    Guard(Vec<LinearConstraint>),
    /// An affine assignment `x_v := e`.
    Assign(VarId, AffineExpr),
    /// A non-deterministic assignment `x_v := nondet()`.
    Havoc(VarId),
}

/// A CFG edge.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CfgEdge {
    /// Source node.
    pub from: NodeId,
    /// Target node.
    pub to: NodeId,
    /// Guarded command on the edge.
    pub op: CfgOp,
}

/// A control-flow automaton over the program variables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cfg {
    num_nodes: usize,
    num_vars: usize,
    entry: NodeId,
    exit: NodeId,
    edges: Vec<CfgEdge>,
    loop_headers: Vec<NodeId>,
}

impl Cfg {
    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of program variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Entry node.
    pub fn entry(&self) -> NodeId {
        self.entry
    }

    /// Exit node.
    pub fn exit(&self) -> NodeId {
        self.exit
    }

    /// All edges.
    pub fn edges(&self) -> &[CfgEdge] {
        &self.edges
    }

    /// The loop-header nodes, in pre-order of the `while` statements; index
    /// `k` in this slice is cut point `k` of the transition system.
    pub fn loop_headers(&self) -> &[NodeId] {
        &self.loop_headers
    }

    /// Edges leaving `node`.
    pub fn successors(&self, node: NodeId) -> impl Iterator<Item = &CfgEdge> {
        self.edges.iter().filter(move |e| e.from == node)
    }

    /// Edges entering `node`.
    pub fn predecessors(&self, node: NodeId) -> impl Iterator<Item = &CfgEdge> {
        self.edges.iter().filter(move |e| e.to == node)
    }
}

impl fmt::Display for Cfg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cfg: {} nodes, {} edges, entry {}, exit {}, headers {:?}",
            self.num_nodes,
            self.edges.len(),
            self.entry,
            self.exit,
            self.loop_headers
        )
    }
}

struct CfgBuilder {
    num_vars: usize,
    next_node: usize,
    edges: Vec<CfgEdge>,
    loop_headers: Vec<NodeId>,
}

impl CfgBuilder {
    fn fresh_node(&mut self) -> NodeId {
        let n = self.next_node;
        self.next_node += 1;
        n
    }

    fn edge(&mut self, from: NodeId, to: NodeId, op: CfgOp) {
        self.edges.push(CfgEdge { from, to, op });
    }

    fn guard_edges(&mut self, from: NodeId, to: NodeId, cond: &Cond, negate: bool) {
        for conj in cond_to_dnf(cond, self.num_vars, negate) {
            self.edge(from, to, CfgOp::Guard(conj));
        }
    }

    fn skip_edge(&mut self, from: NodeId, to: NodeId) {
        self.edge(from, to, CfgOp::Guard(Vec::new()));
    }

    fn lower_stmts(&mut self, stmts: &[Stmt], mut cur: NodeId) -> NodeId {
        for s in stmts {
            cur = self.lower_stmt(s, cur);
        }
        cur
    }

    fn lower_stmt(&mut self, stmt: &Stmt, cur: NodeId) -> NodeId {
        match stmt {
            Stmt::Skip => cur,
            Stmt::Assign(v, e) => {
                let next = self.fresh_node();
                match AffineExpr::from_expr(e, self.num_vars) {
                    Some(a) => self.edge(cur, next, CfgOp::Assign(*v, a)),
                    None => self.edge(cur, next, CfgOp::Havoc(*v)),
                }
                next
            }
            Stmt::Assume(c) => {
                let next = self.fresh_node();
                self.guard_edges(cur, next, c, false);
                next
            }
            Stmt::If(c, then_branch, else_branch) => {
                let then_entry = self.fresh_node();
                let else_entry = self.fresh_node();
                let join = self.fresh_node();
                self.guard_edges(cur, then_entry, c, false);
                self.guard_edges(cur, else_entry, c, true);
                let then_end = self.lower_stmts(then_branch, then_entry);
                self.skip_edge(then_end, join);
                let else_end = self.lower_stmts(else_branch, else_entry);
                self.skip_edge(else_end, join);
                join
            }
            Stmt::Choice(branches) => {
                let join = self.fresh_node();
                for branch in branches {
                    let entry = self.fresh_node();
                    self.skip_edge(cur, entry);
                    let end = self.lower_stmts(branch, entry);
                    self.skip_edge(end, join);
                }
                join
            }
            Stmt::While(c, body) => {
                let header = self.fresh_node();
                self.loop_headers.push(header);
                self.skip_edge(cur, header);
                let body_entry = self.fresh_node();
                self.guard_edges(header, body_entry, c, false);
                let body_end = self.lower_stmts(body, body_entry);
                self.skip_edge(body_end, header);
                let after = self.fresh_node();
                self.guard_edges(header, after, c, true);
                after
            }
        }
    }
}

impl Program {
    /// Lowers the program to its node-level control-flow automaton.
    pub fn to_cfg(&self) -> Cfg {
        let mut b = CfgBuilder {
            num_vars: self.num_vars(),
            next_node: 0,
            edges: Vec::new(),
            loop_headers: Vec::new(),
        };
        let entry = b.fresh_node();
        let mut cur = entry;
        if let Some(init) = &self.init {
            let next = b.fresh_node();
            b.guard_edges(cur, next, init, false);
            cur = next;
        }
        let exit = b.lower_stmts(&self.body, cur);
        Cfg {
            num_nodes: b.next_node,
            num_vars: self.num_vars(),
            entry,
            exit,
            edges: b.edges,
            loop_headers: b.loop_headers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn straight_line_cfg() {
        let p = parse_program("var x; x = 1; x = x + 1;").unwrap();
        let cfg = p.to_cfg();
        assert_eq!(cfg.loop_headers().len(), 0);
        assert_eq!(cfg.edges().len(), 2);
        assert_ne!(cfg.entry(), cfg.exit());
    }

    #[test]
    fn single_loop_cfg() {
        let p = parse_program("var x; while (x > 0) { x = x - 1; }").unwrap();
        let cfg = p.to_cfg();
        assert_eq!(cfg.loop_headers().len(), 1);
        let header = cfg.loop_headers()[0];
        // Header has at least two outgoing edges (enter body, exit loop).
        assert!(cfg.successors(header).count() >= 2);
        // And the body eventually loops back to it.
        assert!(cfg.predecessors(header).count() >= 2);
    }

    #[test]
    fn if_creates_two_guarded_paths() {
        let p = parse_program("var x; if (x >= 0) { x = x - 1; } else { x = x + 1; }").unwrap();
        let cfg = p.to_cfg();
        let from_entry: Vec<_> = cfg.successors(cfg.entry()).collect();
        assert_eq!(from_entry.len(), 2);
        assert!(from_entry.iter().all(|e| matches!(e.op, CfgOp::Guard(_))));
    }

    #[test]
    fn disjunctive_guard_splits_edges() {
        let p = parse_program("var x, y; while (x > 0 || y > 0) { x = x - 1; }").unwrap();
        let cfg = p.to_cfg();
        let header = cfg.loop_headers()[0];
        // Two entry edges (one per disjunct) plus one exit edge (conjunction of
        // the negations stays convex).
        let guards: Vec<_> = cfg.successors(header).collect();
        assert_eq!(guards.len(), 3);
    }

    #[test]
    fn nested_loops_preorder_headers() {
        let p = parse_program(
            "var i, j; while (i < 5) { j = 0; while (j < 10) { j = j + 1; } i = i + 1; }",
        )
        .unwrap();
        let cfg = p.to_cfg();
        assert_eq!(cfg.loop_headers().len(), 2);
        // Pre-order: outer loop first.
        assert!(cfg.loop_headers()[0] < cfg.loop_headers()[1]);
    }

    #[test]
    fn havoc_assignment() {
        let p = parse_program("var x; x = nondet();").unwrap();
        let cfg = p.to_cfg();
        assert!(matches!(cfg.edges()[0].op, CfgOp::Havoc(0)));
    }
}
