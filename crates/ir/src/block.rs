//! Large-block encoding: the cut-point transition system.
//!
//! The cut-set of a structured program is the set of its loop headers
//! (Section 2.2 of the paper; in block-structured programs loop headers cut
//! every cycle). For every pair of cut points `k`, `k'`, this module builds a
//! linear-arithmetic formula over the pre-state variables `x`, the post-state
//! variables `x'` and auxiliary existential variables describing **all** paths
//! from `k` to `k'` that do not traverse another cut point.
//!
//! The encoding is *structural*: statement sequences become conjunctions
//! linked by intermediate symbolic states, and branching statements become
//! disjunctions over fresh merge variables, so the formula size stays linear
//! in the program size even when the number of paths is exponential (the
//! scalability point of §1 and §10 of the paper). The formula is handed to
//! the optimizing SMT solver as-is; it is never expanded to DNF.

use crate::affine::{cond_to_formula, AffineExpr};
use crate::ast::{Program, Stmt};
use std::fmt;
use termite_smt::{Formula, LinExpr, TermVar};

/// Identifier of a cut point (loop header), `0..num_locations`.
pub type LocId = usize;

/// A "large block" transition between two cut points.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockTransition {
    /// Source cut point.
    pub from: LocId,
    /// Target cut point.
    pub to: LocId,
    /// Relation between the pre-state (variables `0..n`), the post-state
    /// (variables `n..2n`) and auxiliary variables (`≥ 2n`).
    pub formula: Formula,
}

/// The cut-point transition system of a program.
///
/// Variable numbering convention (shared with `termite-core`):
/// * `TermVar(i)` for `i < n` is the pre-state value of program variable `i`;
/// * `TermVar(n + i)` is its post-state value;
/// * `TermVar(j)` for `j ≥ 2n` are auxiliary (existential) variables
///   introduced by the encoding; fresh variables may be allocated starting at
///   [`TransitionSystem::first_free_var`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TransitionSystem {
    var_names: Vec<String>,
    num_locations: usize,
    transitions: Vec<BlockTransition>,
    next_temp: usize,
    name: String,
}

impl TransitionSystem {
    /// Builds a transition system directly from parts (used by benchmark
    /// generators and tests; [`Program::transition_system`] is the usual
    /// entry point).
    pub fn from_parts(
        name: impl Into<String>,
        var_names: Vec<String>,
        num_locations: usize,
        transitions: Vec<BlockTransition>,
        next_temp: usize,
    ) -> Self {
        let n = var_names.len();
        TransitionSystem {
            var_names,
            num_locations,
            transitions,
            next_temp: next_temp.max(2 * n),
            name: name.into(),
        }
    }

    /// Name of the underlying program.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of integer program variables `n`.
    pub fn num_vars(&self) -> usize {
        self.var_names.len()
    }

    /// Names of the program variables.
    pub fn var_names(&self) -> &[String] {
        &self.var_names
    }

    /// The cut points `0..num_locations`.
    pub fn locations(&self) -> Vec<LocId> {
        (0..self.num_locations).collect()
    }

    /// Number of cut points.
    pub fn num_locations(&self) -> usize {
        self.num_locations
    }

    /// The block transitions.
    pub fn transitions(&self) -> &[BlockTransition] {
        &self.transitions
    }

    /// Pre-state theory variable of program variable `i`.
    pub fn pre_var(&self, i: usize) -> TermVar {
        TermVar(i)
    }

    /// Post-state theory variable of program variable `i`.
    pub fn post_var(&self, i: usize) -> TermVar {
        TermVar(self.num_vars() + i)
    }

    /// First theory-variable index not used by the encoding; callers may
    /// allocate fresh variables from this index upwards.
    pub fn first_free_var(&self) -> usize {
        self.next_temp
    }

    /// Total number of atoms across all block transition formulas (a size
    /// measure reported by the benchmark harness).
    pub fn formula_atoms(&self) -> usize {
        self.transitions.iter().map(|t| t.formula.num_atoms()).sum()
    }
}

impl fmt::Display for TransitionSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "transition system `{}`: {} variables, {} cut points, {} block transitions",
            self.name,
            self.num_vars(),
            self.num_locations,
            self.transitions.len()
        )
    }
}

/// Where control goes after the current statement list is exhausted.
#[derive(Clone, Copy, Debug)]
enum Tail {
    /// Jump back to the given loop header.
    LoopBack(LocId),
    /// Fall off the end of the program.
    Exit,
}

/// A continuation: statement slices still to execute, then the tail.
#[derive(Clone, Debug)]
struct Cont<'a> {
    frames: Vec<&'a [Stmt]>,
    tail: Tail,
}

impl<'a> Cont<'a> {
    fn push_front(&self, stmts: &'a [Stmt]) -> Cont<'a> {
        let mut frames = Vec::with_capacity(self.frames.len() + 1);
        frames.push(stmts);
        frames.extend(self.frames.iter().copied());
        Cont {
            frames,
            tail: self.tail,
        }
    }
}

/// Symbolic state: the current value of each program variable as a linear
/// expression over already-introduced theory variables.
type SymState = Vec<LinExpr>;

struct BlockBuilder<'p> {
    program: &'p Program,
    n: usize,
    next_temp: usize,
    transitions: Vec<BlockTransition>,
    /// `while` statements in pre-order; index = cut point id.
    loops: Vec<&'p Stmt>,
}

fn preorder_whiles<'a>(stmts: &'a [Stmt], out: &mut Vec<&'a Stmt>) {
    for s in stmts {
        match s {
            Stmt::While(_, body) => {
                out.push(s);
                preorder_whiles(body, out);
            }
            Stmt::If(_, a, b) => {
                preorder_whiles(a, out);
                preorder_whiles(b, out);
            }
            Stmt::Choice(branches) => {
                for b in branches {
                    preorder_whiles(b, out);
                }
            }
            _ => {}
        }
    }
}

fn contains_while(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::While(_, _) => true,
        Stmt::If(_, a, b) => contains_while(a) || contains_while(b),
        Stmt::Choice(branches) => branches.iter().any(|b| contains_while(b)),
        _ => false,
    })
}

impl<'p> BlockBuilder<'p> {
    fn fresh_temp(&mut self) -> TermVar {
        let v = TermVar(self.next_temp);
        self.next_temp += 1;
        v
    }

    fn loop_id(&self, stmt: &Stmt) -> LocId {
        self.loops
            .iter()
            .position(|w| std::ptr::eq(*w, stmt))
            .expect("while statement must have been collected")
    }

    fn identity_state(&self) -> SymState {
        (0..self.n).map(|i| LinExpr::var(TermVar(i))).collect()
    }

    fn state_fn(state: &SymState) -> impl Fn(usize) -> LinExpr + '_ {
        move |i| state[i].clone()
    }

    fn emit(&mut self, from: LocId, to: LocId, path: Formula, state: &SymState) {
        if path == Formula::False {
            return;
        }
        let mut conj = vec![path];
        for (i, value) in state.iter().enumerate() {
            conj.push(Formula::eq_expr(
                LinExpr::var(TermVar(self.n + i)),
                value.clone(),
            ));
        }
        self.transitions.push(BlockTransition {
            from,
            to,
            formula: Formula::and(conj),
        });
    }

    /// Walks a statement list from cut point `source`, emitting a block
    /// transition whenever another cut point (or `source` again) is reached.
    fn walk(
        &mut self,
        source: LocId,
        state: SymState,
        path: Formula,
        stmts: &'p [Stmt],
        cont: Cont<'p>,
    ) {
        if path == Formula::False {
            return;
        }
        let Some((first, rest)) = stmts.split_first() else {
            let mut frames = cont.frames.clone();
            if frames.is_empty() {
                match cont.tail {
                    Tail::LoopBack(h) => self.emit(source, h, path, &state),
                    Tail::Exit => {}
                }
            } else {
                let next = frames.remove(0);
                self.walk(
                    source,
                    state,
                    path,
                    next,
                    Cont {
                        frames,
                        tail: cont.tail,
                    },
                );
            }
            return;
        };
        match first {
            Stmt::Skip => self.walk(source, state, path, rest, cont),
            Stmt::Assign(v, e) => {
                let mut state = state;
                match AffineExpr::from_expr(e, self.n) {
                    Some(a) => {
                        let value = a.to_linexpr(&Self::state_fn(&state));
                        state[*v] = value;
                    }
                    None => {
                        let t = self.fresh_temp();
                        state[*v] = LinExpr::var(t);
                    }
                }
                self.walk(source, state, path, rest, cont)
            }
            Stmt::Assume(c) => {
                let guard = cond_to_formula(c, &Self::state_fn(&state), self.n, false);
                self.walk(source, state, Formula::and(vec![path, guard]), rest, cont)
            }
            Stmt::If(c, then_branch, else_branch) => {
                if contains_while(then_branch) || contains_while(else_branch) {
                    let g_then = cond_to_formula(c, &Self::state_fn(&state), self.n, false);
                    let g_else = cond_to_formula(c, &Self::state_fn(&state), self.n, true);
                    let cont_then = cont.push_front(rest);
                    self.walk(
                        source,
                        state.clone(),
                        Formula::and(vec![path.clone(), g_then]),
                        then_branch,
                        cont_then,
                    );
                    let cont_else = cont.push_front(rest);
                    self.walk(
                        source,
                        state,
                        Formula::and(vec![path, g_else]),
                        else_branch,
                        cont_else,
                    );
                } else {
                    let g_then = cond_to_formula(c, &Self::state_fn(&state), self.n, false);
                    let g_else = cond_to_formula(c, &Self::state_fn(&state), self.n, true);
                    let branches = vec![
                        (g_then, then_branch.as_slice()),
                        (g_else, else_branch.as_slice()),
                    ];
                    let (merged, new_state) = self.merge_branches(&state, branches);
                    self.walk(
                        source,
                        new_state,
                        Formula::and(vec![path, merged]),
                        rest,
                        cont,
                    )
                }
            }
            Stmt::Choice(branch_list) => {
                if branch_list.iter().any(|b| contains_while(b)) {
                    for branch in branch_list {
                        let cont_b = cont.push_front(rest);
                        self.walk(source, state.clone(), path.clone(), branch, cont_b);
                    }
                } else {
                    let branches: Vec<(Formula, &[Stmt])> = branch_list
                        .iter()
                        .map(|b| (Formula::True, b.as_slice()))
                        .collect();
                    let (merged, new_state) = self.merge_branches(&state, branches);
                    self.walk(
                        source,
                        new_state,
                        Formula::and(vec![path, merged]),
                        rest,
                        cont,
                    )
                }
            }
            Stmt::While(_, _) => {
                let h = self.loop_id(first);
                self.emit(source, h, path, &state);
            }
        }
    }

    /// Straight-line (loop-free) encoding of a statement list; returns the
    /// accumulated path condition and the final symbolic state.
    fn straight(
        &mut self,
        mut state: SymState,
        mut path: Formula,
        stmts: &[Stmt],
    ) -> (Formula, SymState) {
        for s in stmts {
            match s {
                Stmt::Skip => {}
                Stmt::Assign(v, e) => match AffineExpr::from_expr(e, self.n) {
                    Some(a) => {
                        let value = a.to_linexpr(&Self::state_fn(&state));
                        state[*v] = value;
                    }
                    None => {
                        let t = self.fresh_temp();
                        state[*v] = LinExpr::var(t);
                    }
                },
                Stmt::Assume(c) => {
                    let guard = cond_to_formula(c, &Self::state_fn(&state), self.n, false);
                    path = Formula::and(vec![path, guard]);
                }
                Stmt::If(c, a, b) => {
                    let g_then = cond_to_formula(c, &Self::state_fn(&state), self.n, false);
                    let g_else = cond_to_formula(c, &Self::state_fn(&state), self.n, true);
                    let branches = vec![(g_then, a.as_slice()), (g_else, b.as_slice())];
                    let (merged, new_state) = self.merge_branches(&state, branches);
                    path = Formula::and(vec![path, merged]);
                    state = new_state;
                }
                Stmt::Choice(branch_list) => {
                    let branches: Vec<(Formula, &[Stmt])> = branch_list
                        .iter()
                        .map(|b| (Formula::True, b.as_slice()))
                        .collect();
                    let (merged, new_state) = self.merge_branches(&state, branches);
                    path = Formula::and(vec![path, merged]);
                    state = new_state;
                }
                Stmt::While(_, _) => unreachable!("straight-line encoding cannot contain loops"),
            }
        }
        (path, state)
    }

    /// Encodes a branching construct whose branches are loop-free: each branch
    /// is encoded independently and the results are merged into fresh
    /// variables, producing a disjunction of linear size.
    fn merge_branches(
        &mut self,
        state: &SymState,
        branches: Vec<(Formula, &[Stmt])>,
    ) -> (Formula, SymState) {
        let encoded: Vec<(Formula, SymState)> = branches
            .into_iter()
            .map(|(guard, stmts)| self.straight(state.clone(), guard, stmts))
            .collect();
        let merged_state: SymState = (0..self.n)
            .map(|_| LinExpr::var(self.fresh_temp()))
            .collect();
        let disjuncts: Vec<Formula> = encoded
            .into_iter()
            .map(|(branch_path, branch_state)| {
                let mut conj = vec![branch_path];
                for i in 0..self.n {
                    conj.push(Formula::eq_expr(
                        merged_state[i].clone(),
                        branch_state[i].clone(),
                    ));
                }
                Formula::and(conj)
            })
            .collect();
        (Formula::or(disjuncts), merged_state)
    }

    /// The continuation of a given `while` statement: what runs after the loop
    /// exits.
    fn continuation_of(&self, target: &Stmt) -> Cont<'p> {
        fn search<'p>(
            stmts: &'p [Stmt],
            target: &Stmt,
            outer: &Cont<'p>,
            loops: &[&'p Stmt],
        ) -> Option<Cont<'p>> {
            for (i, s) in stmts.iter().enumerate() {
                let rest = &stmts[i + 1..];
                if std::ptr::eq(s, target) {
                    return Some(outer.push_front(rest));
                }
                match s {
                    Stmt::While(_, body) => {
                        let my_id = loops
                            .iter()
                            .position(|w| std::ptr::eq(*w, s))
                            .expect("collected loop");
                        let inner = Cont {
                            frames: Vec::new(),
                            tail: Tail::LoopBack(my_id),
                        };
                        if let Some(found) = search(body, target, &inner, loops) {
                            return Some(found);
                        }
                    }
                    Stmt::If(_, a, b) => {
                        let branch_cont = outer.push_front(rest);
                        if let Some(found) = search(a, target, &branch_cont, loops) {
                            return Some(found);
                        }
                        if let Some(found) = search(b, target, &branch_cont, loops) {
                            return Some(found);
                        }
                    }
                    Stmt::Choice(branch_list) => {
                        let branch_cont = outer.push_front(rest);
                        for branch in branch_list {
                            if let Some(found) = search(branch, target, &branch_cont, loops) {
                                return Some(found);
                            }
                        }
                    }
                    _ => {}
                }
            }
            None
        }
        let top = Cont {
            frames: Vec::new(),
            tail: Tail::Exit,
        };
        search(&self.program.body, target, &top, &self.loops)
            .expect("every collected while occurs in the program body")
    }
}

impl Program {
    /// Builds the cut-point transition system (large-block encoding) of the
    /// program.
    pub fn transition_system(&self) -> TransitionSystem {
        let mut loops = Vec::new();
        preorder_whiles(&self.body, &mut loops);
        let n = self.num_vars();
        let mut builder = BlockBuilder {
            program: self,
            n,
            next_temp: 2 * n,
            transitions: Vec::new(),
            loops: loops.clone(),
        };
        for (id, w) in loops.iter().enumerate() {
            let Stmt::While(cond, body) = w else {
                unreachable!()
            };
            let identity = builder.identity_state();
            // (a) one more iteration: guard holds, execute the body, continue
            //     until the next cut point (possibly this one).
            let enter = cond_to_formula(cond, &BlockBuilder::state_fn(&identity), n, false);
            builder.walk(
                id,
                identity.clone(),
                enter,
                body,
                Cont {
                    frames: Vec::new(),
                    tail: Tail::LoopBack(id),
                },
            );
            // (b) loop exit: guard fails, continue with whatever follows the
            //     loop until the next cut point or program exit.
            let exit = cond_to_formula(cond, &BlockBuilder::state_fn(&identity), n, true);
            let cont = builder.continuation_of(w);
            builder.walk(id, identity, exit, &[], cont);
        }
        TransitionSystem {
            var_names: self.vars.clone(),
            num_locations: loops.len(),
            transitions: builder.transitions,
            next_temp: builder.next_temp,
            name: self.name.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use termite_num::Rational;

    /// Checks that a concrete (pre, post) pair satisfies some transition
    /// formula between the given locations, by evaluating the formula with
    /// every combination of auxiliary values drawn from a small window around
    /// the mentioned constants. (Only used on tiny formulas in tests.)
    fn has_transition(
        ts: &TransitionSystem,
        from: usize,
        to: usize,
        pre: &[i64],
        post: &[i64],
    ) -> bool {
        let n = ts.num_vars();
        ts.transitions()
            .iter()
            .filter(|t| t.from == from && t.to == to)
            .any(|t| {
                // Collect auxiliary variables of the formula.
                let aux: Vec<TermVar> = t
                    .formula
                    .vars()
                    .into_iter()
                    .filter(|v| v.0 >= 2 * n)
                    .collect();
                // Candidate values for auxiliaries: all pre/post values and
                // small constants (enough for merge variables, which always
                // equal one of the branch results).
                let mut candidates: Vec<i64> = pre.iter().chain(post.iter()).copied().collect();
                candidates.extend_from_slice(&[-1, 0, 1]);
                candidates.sort_unstable();
                candidates.dedup();
                #[allow(clippy::too_many_arguments)]
                fn try_all(
                    formula: &Formula,
                    aux: &[TermVar],
                    idx: usize,
                    assign: &mut std::collections::HashMap<usize, i64>,
                    candidates: &[i64],
                    pre: &[i64],
                    post: &[i64],
                    n: usize,
                ) -> bool {
                    if idx == aux.len() {
                        let eval = |v: TermVar| -> Rational {
                            if v.0 < n {
                                Rational::from(pre[v.0])
                            } else if v.0 < 2 * n {
                                Rational::from(post[v.0 - n])
                            } else {
                                Rational::from(*assign.get(&v.0).unwrap_or(&0))
                            }
                        };
                        return formula.eval(&eval);
                    }
                    for &c in candidates {
                        assign.insert(aux[idx].0, c);
                        if try_all(formula, aux, idx + 1, assign, candidates, pre, post, n) {
                            return true;
                        }
                    }
                    assign.remove(&aux[idx].0);
                    false
                }
                let mut assign = std::collections::HashMap::new();
                try_all(&t.formula, &aux, 0, &mut assign, &candidates, pre, post, n)
            })
    }

    #[test]
    fn example_1_single_block_with_disjunction() {
        let p = parse_program(
            r#"
            var x, y;
            while (true) {
                choice {
                    assume x <= 10 && y >= 0;
                    x = x + 1;
                    y = y - 1;
                } or {
                    assume x >= 0 && y >= 0;
                    x = x - 1;
                    y = y - 1;
                }
            }
            "#,
        )
        .unwrap();
        let ts = p.transition_system();
        assert_eq!(ts.num_locations(), 1);
        assert_eq!(ts.transitions().len(), 1);
        // Transition t1 from (5, 10) to (6, 9) and t2 to (4, 9) are both allowed.
        assert!(has_transition(&ts, 0, 0, &[5, 10], &[6, 9]));
        assert!(has_transition(&ts, 0, 0, &[5, 10], &[4, 9]));
        // But not an arbitrary jump.
        assert!(!has_transition(&ts, 0, 0, &[5, 10], &[9, 9]));
        // And not when the guard fails (y < 0).
        assert!(!has_transition(&ts, 0, 0, &[5, -1], &[6, -2]));
    }

    #[test]
    fn sequence_of_ifs_stays_single_transition() {
        // Listing 1 of the paper: the ranking function decreases on each path,
        // not at each step; the block encoding keeps one transition per loop.
        let p = parse_program(
            r#"
            var x, c;
            while (x >= 0) {
                c = nondet();
                if (c >= 1) { x = x - 1; } else { skip; }
                if (c <= 0) { x = x - 1; } else { skip; }
            }
            "#,
        )
        .unwrap();
        let ts = p.transition_system();
        assert_eq!(ts.num_locations(), 1);
        assert_eq!(ts.transitions().len(), 1);
        // x always decreases by exactly one along the block (either branch).
        assert!(has_transition(&ts, 0, 0, &[5, 0], &[4, 0]));
        assert!(has_transition(&ts, 0, 0, &[5, 1], &[4, 1]));
        assert!(!has_transition(&ts, 0, 0, &[5, 1], &[3, 1]));
        assert!(!has_transition(&ts, 0, 0, &[5, 0], &[5, 0]));
    }

    #[test]
    fn formula_size_is_linear_in_the_number_of_tests() {
        // A loop with t successive if-then-else statements has 2^t paths but a
        // linear-size block formula.
        fn program_with_tests(t: usize) -> String {
            let mut body = String::new();
            for _ in 0..t {
                body.push_str("if (nondet()) { x = x - 1; } else { x = x - 2; }\n");
            }
            format!("var x;\nwhile (x >= 0) {{\n{body}}}\n")
        }
        let small = parse_program(&program_with_tests(2))
            .unwrap()
            .transition_system();
        let large = parse_program(&program_with_tests(8))
            .unwrap()
            .transition_system();
        let per_test = (large.formula_atoms() - small.formula_atoms()) as f64 / 6.0;
        // Linear growth: the atom count per added test is a small constant.
        assert!(
            per_test <= 12.0,
            "per-test formula growth too large: {per_test}"
        );
        assert_eq!(large.transitions().len(), 1);
    }

    #[test]
    fn nested_loops_have_four_transition_groups() {
        // Example 4 of the paper (two nested loops).
        let p = parse_program(
            r#"
            var i, j;
            while (i < 5) {
                j = 0;
                while (i > 2 && j <= 9) {
                    j = j + 1;
                }
                i = i + 1;
            }
            "#,
        )
        .unwrap();
        let ts = p.transition_system();
        assert_eq!(ts.num_locations(), 2);
        let pairs: std::collections::BTreeSet<(usize, usize)> =
            ts.transitions().iter().map(|t| (t.from, t.to)).collect();
        // outer -> inner (enter the inner loop), inner -> inner (iterate),
        // inner -> outer (leave the inner loop, finish the body).
        assert!(pairs.contains(&(0, 1)));
        assert!(pairs.contains(&(1, 1)));
        assert!(pairs.contains(&(1, 0)));
        // No direct outer -> outer transition: every outer iteration passes
        // through the inner header.
        assert!(!pairs.contains(&(0, 0)));
        // Concrete steps: entering the inner loop sets j to 0.
        assert!(has_transition(&ts, 0, 1, &[3, 7], &[3, 0]));
        // Iterating the inner loop increments j.
        assert!(has_transition(&ts, 1, 1, &[3, 2], &[3, 3]));
        // Leaving the inner loop increments i.
        assert!(has_transition(&ts, 1, 0, &[3, 10], &[4, 10]));
        assert!(!has_transition(&ts, 1, 0, &[3, 5], &[4, 5]));
    }

    #[test]
    fn loop_exit_through_trailing_code_reaches_later_loop() {
        let p = parse_program(
            r#"
            var x, y;
            while (x > 0) { x = x - 1; }
            y = 10;
            while (y > 0) { y = y - 1; }
            "#,
        )
        .unwrap();
        let ts = p.transition_system();
        assert_eq!(ts.num_locations(), 2);
        let pairs: std::collections::BTreeSet<(usize, usize)> =
            ts.transitions().iter().map(|t| (t.from, t.to)).collect();
        assert!(pairs.contains(&(0, 0)));
        assert!(pairs.contains(&(0, 1))); // exit the first loop, y := 10, reach the second
        assert!(pairs.contains(&(1, 1)));
        // Exiting the first loop sets y to 10 regardless of its old value.
        assert!(has_transition(&ts, 0, 1, &[0, 3], &[0, 10]));
        assert!(!has_transition(&ts, 0, 1, &[0, 3], &[0, 3]));
    }

    #[test]
    fn loop_inside_if_branch() {
        let p = parse_program(
            r#"
            var x, y;
            while (x > 0) {
                if (y > 0) {
                    while (y > 0) { y = y - 1; }
                } else { skip; }
                x = x - 1;
            }
            "#,
        )
        .unwrap();
        let ts = p.transition_system();
        assert_eq!(ts.num_locations(), 2);
        let pairs: std::collections::BTreeSet<(usize, usize)> =
            ts.transitions().iter().map(|t| (t.from, t.to)).collect();
        // Outer can loop to itself through the else branch.
        assert!(pairs.contains(&(0, 0)));
        // Outer reaches the inner header through the then branch.
        assert!(pairs.contains(&(0, 1)));
        // Inner loops and exits back to the outer header (after x = x - 1).
        assert!(pairs.contains(&(1, 1)));
        assert!(pairs.contains(&(1, 0)));
        assert!(has_transition(&ts, 0, 0, &[3, 0], &[2, 0]));
        assert!(has_transition(&ts, 1, 0, &[3, 0], &[2, 0]));
    }

    #[test]
    fn from_parts_constructor() {
        let ts = TransitionSystem::from_parts("manual", vec!["x".into()], 1, Vec::new(), 0);
        assert_eq!(ts.num_vars(), 1);
        assert_eq!(ts.first_free_var(), 2);
        assert_eq!(ts.name(), "manual");
    }
}
