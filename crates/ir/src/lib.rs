//! Program representation for the Termite termination analyser.
//!
//! The original Termite consumes LLVM bitcode produced from C. This crate is
//! the equivalent front-end substrate for the reproduction: a small structured
//! integer language, its control-flow automaton, the cut-set of loop headers,
//! and — crucially — the **large-block encoding** of the transition relation
//! between cut points that the paper's algorithm consumes without ever
//! expanding it to disjunctive normal form.
//!
//! * [`parse_program`] / [`Program`] — a structured `while`/`if`/`choice`
//!   language over integer variables with affine assignments, `nondet()`
//!   havoc and `assume` statements;
//! * [`Cfg`] — the node-level control-flow automaton (one affine guarded
//!   command per edge) used by the polyhedral invariant generator;
//! * [`TransitionSystem`] — the cut-point transition system: one location per
//!   loop header and, for every pair of cut points, a linear-arithmetic
//!   formula (with `∧`, `∨` and auxiliary existential variables) describing
//!   all paths between them that avoid other cut points. Its size is linear
//!   in the program size even when the number of paths is exponential
//!   (Listing 1 / §10 of the paper);
//! * [`opt`] / [`optimize`] — the pre-analysis shrinking pipeline
//!   (unreachable-code elimination, block merging, constant propagation,
//!   dead-variable elimination) with a [`Provenance`] map that translates
//!   results back to source variables.
//!
//! # Example
//!
//! ```
//! use termite_ir::parse_program;
//!
//! let program = parse_program(r#"
//!     var x, y;
//!     assume x == 5 && y == 10;
//!     while (true) {
//!         choice {
//!             assume x <= 10 && y >= 0;
//!             x = x + 1;
//!             y = y - 1;
//!         } or {
//!             assume x >= 0 && y >= 0;
//!             x = x - 1;
//!             y = y - 1;
//!         }
//!     }
//! "#).unwrap();
//! let ts = program.transition_system();
//! assert_eq!(ts.locations().len(), 1);          // one loop header
//! assert_eq!(ts.transitions().len(), 1);        // one self-loop block (with ∨ inside)
//! let cfg = program.to_cfg();
//! assert_eq!(cfg.loop_headers().len(), 1);
//! ```

#![deny(missing_docs)]

mod affine;
mod ast;
mod block;
mod cfg;
pub mod opt;
mod parser;

pub use affine::{
    cond_to_dnf, cond_to_formula, identity_state, polyhedron_to_formula, AffineExpr,
    LinearConstraint,
};
pub use ast::{CmpOp, Cond, Expr, Program, Stmt, VarId};
pub use block::{BlockTransition, TransitionSystem};
pub use cfg::{Cfg, CfgEdge, CfgOp, NodeId};
pub use opt::{optimize, OptStats, Optimized, Provenance, OPT_PIPELINE_VERSION};
pub use parser::{parse_named_program, parse_program, ParseError};
