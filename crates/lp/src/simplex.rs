//! Two-phase primal simplex over exact rationals.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use termite_linalg::QVector;
use termite_num::Rational;

/// How often the pivot loop polls the [`Interrupt`]: every
/// `INTERRUPT_POLL_PERIOD` pivots. Polling is an atomic load behind an `Arc`
/// call, so the period only has to amortise the indirect call, not the check.
pub(crate) const INTERRUPT_POLL_PERIOD: usize = 64;

/// A cooperative interruption source polled inside the simplex pivot loop.
///
/// `termite-lp` sits below the crate that owns the cancellation tokens, so
/// the coupling is a plain closure: the caller wraps whatever flag it wants
/// observed (a portfolio cancel token, a deadline, a test hook) and the
/// solver polls it every `INTERRUPT_POLL_PERIOD` (64) pivots. An interrupted
/// solve returns `None` — never a wrong answer.
#[derive(Clone, Default)]
pub struct Interrupt(Option<Arc<dyn Fn() -> bool + Send + Sync>>);

impl Interrupt {
    /// An interrupt that never fires (the default).
    pub fn never() -> Self {
        Interrupt(None)
    }

    /// Wraps a polling closure; the solver stops soon after it first returns
    /// `true`.
    pub fn new(poll: impl Fn() -> bool + Send + Sync + 'static) -> Self {
        Interrupt(Some(Arc::new(poll)))
    }

    /// `true` once the underlying source requests interruption.
    pub fn is_raised(&self) -> bool {
        self.0.as_ref().is_some_and(|poll| poll())
    }
}

impl fmt::Debug for Interrupt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Interrupt")
            .field("armed", &self.0.is_some())
            .finish()
    }
}

/// Marker error: the solve was interrupted mid-pivot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Interrupted;

/// Identifier of a decision variable in a [`LinearProgram`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub usize);

/// Comparison relation of a linear constraint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Relation {
    /// `lhs <= rhs`
    Le,
    /// `lhs >= rhs`
    Ge,
    /// `lhs == rhs`
    Eq,
}

/// A linear constraint `Σ coeff_i · x_i  (<=|>=|==)  rhs`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Constraint {
    /// Sparse left-hand side.
    pub terms: Vec<(VarId, Rational)>,
    /// Relation between left- and right-hand side.
    pub relation: Relation,
    /// Right-hand side constant.
    pub rhs: Rational,
}

impl Constraint {
    /// Builds a constraint from a sparse list of terms.
    pub fn new(terms: Vec<(VarId, Rational)>, relation: Relation, rhs: Rational) -> Self {
        Constraint {
            terms,
            relation,
            rhs,
        }
    }
}

/// Direction of optimization.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Direction {
    Maximize,
    Minimize,
}

/// Result status of an LP solve, with attached data.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LpOutcome {
    /// The constraint set is empty.
    Infeasible,
    /// The objective is unbounded in the direction of optimization. The
    /// `ray` is a recession direction of the feasible region along which the
    /// objective improves without bound (indexed like variable ids).
    Unbounded {
        /// Improving recession direction over the decision variables.
        ray: Vec<Rational>,
    },
    /// Finite optimum.
    Optimal {
        /// Optimal objective value.
        objective: Rational,
        /// Optimal assignment, indexed by [`VarId`] order of creation.
        assignment: Vec<Rational>,
    },
}

/// Outcome plus solver statistics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LpSolution {
    /// Solve outcome.
    pub outcome: LpOutcome,
    /// Number of simplex pivots performed (both phases).
    pub pivots: usize,
    /// Number of rows of the constraint matrix.
    pub rows: usize,
    /// Number of decision variables (columns) declared by the user.
    pub cols: usize,
}

impl LpSolution {
    /// Convenience accessor: the optimal assignment if the LP was solved to
    /// optimality.
    pub fn assignment(&self) -> Option<&[Rational]> {
        match &self.outcome {
            LpOutcome::Optimal { assignment, .. } => Some(assignment),
            _ => None,
        }
    }

    /// Convenience accessor: the optimal objective value, if any.
    pub fn objective(&self) -> Option<&Rational> {
        match &self.outcome {
            LpOutcome::Optimal { objective, .. } => Some(objective),
            _ => None,
        }
    }
}

/// Bound type of a decision variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum VarKind {
    /// `x >= 0`
    NonNegative,
    /// unrestricted in sign (internally split into `x⁺ - x⁻`)
    Free,
}

/// A linear program under construction.
///
/// Variables are non-negative by default (that is the natural domain of the
/// Farkas multipliers `γ` and indicator variables `δ` used by the paper);
/// [`LinearProgram::add_free_var`] declares a sign-unrestricted variable.
#[derive(Clone, Debug)]
pub struct LinearProgram {
    pub(crate) names: Vec<String>,
    pub(crate) kinds: Vec<VarKind>,
    pub(crate) constraints: Vec<Constraint>,
    pub(crate) objective: Vec<(VarId, Rational)>,
    pub(crate) direction: Direction,
}

impl Default for LinearProgram {
    fn default() -> Self {
        Self::new()
    }
}

impl LinearProgram {
    /// Creates an empty LP (maximization of 0 by default).
    pub fn new() -> Self {
        LinearProgram {
            names: Vec::new(),
            kinds: Vec::new(),
            constraints: Vec::new(),
            objective: Vec::new(),
            direction: Direction::Maximize,
        }
    }

    /// Declares a non-negative decision variable.
    pub fn add_var(&mut self, name: impl Into<String>) -> VarId {
        self.names.push(name.into());
        self.kinds.push(VarKind::NonNegative);
        VarId(self.names.len() - 1)
    }

    /// Declares a sign-unrestricted decision variable.
    pub fn add_free_var(&mut self, name: impl Into<String>) -> VarId {
        self.names.push(name.into());
        self.kinds.push(VarKind::Free);
        VarId(self.names.len() - 1)
    }

    /// Number of declared decision variables.
    pub fn num_vars(&self) -> usize {
        self.names.len()
    }

    /// Number of constraints added so far.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Adds a constraint.
    pub fn add_constraint(&mut self, c: Constraint) {
        self.constraints.push(c);
    }

    /// Sets the objective to maximize.
    pub fn maximize(&mut self, objective: Vec<(VarId, Rational)>) {
        self.objective = objective;
        self.direction = Direction::Maximize;
    }

    /// Sets the objective to minimize.
    pub fn minimize(&mut self, objective: Vec<(VarId, Rational)>) {
        self.objective = objective;
        self.direction = Direction::Minimize;
    }

    /// Solves the program.
    pub fn solve(&self) -> LpSolution {
        self.solve_interruptible(&Interrupt::never())
            .expect("an unarmed interrupt never fires")
    }

    /// Solves the program, polling `interrupt` every few pivots. Returns
    /// `None` when the solve was interrupted (the partial tableau is
    /// discarded: an interrupted solve never produces an answer).
    pub fn solve_interruptible(&self, interrupt: &Interrupt) -> Option<LpSolution> {
        let (mut t, plus_col, minus_col) = Tableau::build(self);
        t.first_solve(self, &plus_col, &minus_col, interrupt).ok()
    }
}

impl fmt::Display for LinearProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let dir = match self.direction {
            Direction::Maximize => "maximize",
            Direction::Minimize => "minimize",
        };
        write!(f, "{dir} ")?;
        for (i, (v, c)) in self.objective.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{c}*{}", self.names[v.0])?;
        }
        writeln!(f)?;
        for c in &self.constraints {
            write!(f, "  s.t. ")?;
            for (i, (v, k)) in c.terms.iter().enumerate() {
                if i > 0 {
                    write!(f, " + ")?;
                }
                write!(f, "{k}*{}", self.names[v.0])?;
            }
            let rel = match c.relation {
                Relation::Le => "<=",
                Relation::Ge => ">=",
                Relation::Eq => "==",
            };
            writeln!(f, " {rel} {}", c.rhs)?;
        }
        Ok(())
    }
}

/// Internal column classification in the tableau.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ColKind {
    /// positive part of user variable i
    Plus(usize),
    /// negative part of a free user variable i
    Minus(usize),
    /// slack / surplus
    Slack,
    /// phase-1 artificial
    Artificial,
}

/// The simplex tableau in canonical form: every basic column is a unit
/// column. Rows hold only the coefficient part; the right-hand sides live in
/// a parallel vector so appending a column (incremental variable growth) is
/// one push per row instead of an insert. `Clone` is what makes basis
/// snapshots cheap relative to a re-solve: a snapshot is a deep copy of the
/// rows, never a replay of the pivots that produced them.
#[derive(Clone)]
pub(crate) struct Tableau {
    /// Coefficient rows, `ncols` entries each.
    pub(crate) rows: Vec<QVector>,
    /// Right-hand side of each row.
    pub(crate) rhs: Vec<Rational>,
    /// basis[i] = column basic in row i
    pub(crate) basis: Vec<usize>,
    pub(crate) ncols: usize,
    pub(crate) col_kinds: Vec<ColKind>,
    /// Cumulative pivot count over the tableau's lifetime (a warm session
    /// spans several solves; per-solve counts are deltas of this).
    pub(crate) pivots: usize,
}

impl Tableau {
    /// Builds the initial tableau (artificial basis, nothing solved yet).
    /// Also returns the user-variable → column maps needed to state
    /// objectives and read assignments.
    pub(crate) fn build(lp: &LinearProgram) -> (Tableau, Vec<usize>, Vec<Option<usize>>) {
        let user_cols = lp.num_vars();

        // Column layout: for every user variable a Plus column, and for free
        // variables additionally a Minus column; then slacks; then artificials.
        let mut col_kinds: Vec<ColKind> = Vec::new();
        let mut plus_col = vec![0usize; user_cols];
        let mut minus_col: Vec<Option<usize>> = vec![None; user_cols];
        for (i, kind) in lp.kinds.iter().enumerate() {
            plus_col[i] = col_kinds.len();
            col_kinds.push(ColKind::Plus(i));
            if *kind == VarKind::Free {
                minus_col[i] = Some(col_kinds.len());
                col_kinds.push(ColKind::Minus(i));
            }
        }

        let m = lp.constraints.len();
        let struct_cols = col_kinds.len();

        // Dense rows over structural columns, all turned into equalities with
        // non-negative rhs; remember which need a slack and with which sign.
        struct RowBuild {
            coeffs: Vec<Rational>,
            rhs: Rational,
            slack_sign: Option<Rational>, // +1 for <=, -1 for >=
        }
        let mut builds: Vec<RowBuild> = Vec::with_capacity(m);
        for c in &lp.constraints {
            let mut coeffs = vec![Rational::zero(); struct_cols];
            for (v, k) in &c.terms {
                coeffs[plus_col[v.0]] += k;
                if let Some(mc) = minus_col[v.0] {
                    coeffs[mc] -= k;
                }
            }
            let slack_sign = match c.relation {
                Relation::Le => Some(Rational::one()),
                Relation::Ge => Some(-Rational::one()),
                Relation::Eq => None,
            };
            builds.push(RowBuild {
                coeffs,
                rhs: c.rhs.clone(),
                slack_sign,
            });
        }

        // Allocate slack columns.
        let mut slack_col_of_row: Vec<Option<usize>> = vec![None; m];
        for (i, b) in builds.iter().enumerate() {
            if b.slack_sign.is_some() {
                slack_col_of_row[i] = Some(col_kinds.len());
                col_kinds.push(ColKind::Slack);
            }
        }
        // Allocate one artificial per row (some will be unnecessary but this
        // keeps the construction uniform; they are driven out in phase 1).
        let art_col_start = col_kinds.len();
        for _ in 0..m {
            col_kinds.push(ColKind::Artificial);
        }
        let ncols = col_kinds.len();

        let mut rows: Vec<QVector> = Vec::with_capacity(m);
        let mut rhs: Vec<Rational> = Vec::with_capacity(m);
        let mut basis: Vec<usize> = Vec::with_capacity(m);
        for (i, b) in builds.iter().enumerate() {
            let mut row = vec![Rational::zero(); ncols];
            for (j, v) in b.coeffs.iter().enumerate() {
                row[j] = v.clone();
            }
            if let (Some(sc), Some(sign)) = (slack_col_of_row[i], b.slack_sign.clone()) {
                row[sc] = sign;
            }
            let mut r = b.rhs.clone();
            // Normalise to non-negative rhs.
            if r.is_negative() {
                for v in row.iter_mut() {
                    *v = -std::mem::replace(v, Rational::zero());
                }
                r = -r;
            }
            // Artificial basic variable for this row.
            let ac = art_col_start + i;
            row[ac] = Rational::one();
            basis.push(ac);
            rows.push(QVector::from_vec(row));
            rhs.push(r);
        }

        let t = Tableau {
            rows,
            rhs,
            basis,
            ncols,
            col_kinds,
            pivots: 0,
        };
        (t, plus_col, minus_col)
    }

    /// Two-phase solve from the freshly built artificial basis.
    pub(crate) fn first_solve(
        &mut self,
        lp: &LinearProgram,
        plus_col: &[usize],
        minus_col: &[Option<usize>],
        interrupt: &Interrupt,
    ) -> Result<LpSolution, Interrupted> {
        let pivots_before = self.pivots;

        // ---- Phase 1: maximize -(sum of artificials) ----
        let mut phase1_obj = vec![Rational::zero(); self.ncols];
        for (j, k) in self.col_kinds.iter().enumerate() {
            if *k == ColKind::Artificial {
                phase1_obj[j] = -Rational::one();
            }
        }
        let (value1, _unb) = self.run_simplex(&phase1_obj, interrupt)?;
        if value1.is_negative() {
            return Ok(LpSolution {
                outcome: LpOutcome::Infeasible,
                pivots: self.pivots - pivots_before,
                rows: lp.num_constraints(),
                cols: lp.num_vars(),
            });
        }
        // Drive remaining artificials out of the basis (or drop redundant rows).
        self.purge_artificials();

        // ---- Phase 2 ----
        self.optimize(lp, plus_col, minus_col, interrupt, pivots_before)
    }

    /// Runs phase 2 (the real objective) from a primal-feasible basis and
    /// extracts the solution. Shared by the one-shot and warm-started paths.
    pub(crate) fn optimize(
        &mut self,
        lp: &LinearProgram,
        plus_col: &[usize],
        minus_col: &[Option<usize>],
        interrupt: &Interrupt,
        pivots_before: usize,
    ) -> Result<LpSolution, Interrupted> {
        let user_cols = lp.num_vars();
        let mut phase2_obj = vec![Rational::zero(); self.ncols];
        let sign = match lp.direction {
            Direction::Maximize => Rational::one(),
            Direction::Minimize => -Rational::one(),
        };
        for (v, k) in &lp.objective {
            let j = plus_col[v.0];
            phase2_obj[j] += &(k * &sign);
            if let Some(mc) = minus_col[v.0] {
                phase2_obj[mc] -= &(k * &sign);
            }
        }
        let (value2, unbounded_col) = self.run_simplex(&phase2_obj, interrupt)?;

        if let Some(col) = unbounded_col {
            // Build the improving ray over user variables.
            let mut ray = vec![Rational::zero(); user_cols];
            let mut col_dir: HashMap<usize, Rational> = HashMap::new();
            col_dir.insert(col, Rational::one());
            for (i, &b) in self.basis.iter().enumerate() {
                let delta = -&self.rows[i][col];
                if !delta.is_zero() {
                    col_dir.insert(b, delta);
                }
            }
            for (j, k) in self.col_kinds.iter().enumerate() {
                let Some(d) = col_dir.get(&j) else { continue };
                match k {
                    ColKind::Plus(i) => ray[*i] += d,
                    ColKind::Minus(i) => ray[*i] -= d,
                    _ => {}
                }
            }
            return Ok(LpSolution {
                outcome: LpOutcome::Unbounded { ray },
                pivots: self.pivots - pivots_before,
                rows: lp.num_constraints(),
                cols: user_cols,
            });
        }

        // Read the solution off the basis.
        let mut col_values = vec![Rational::zero(); self.ncols];
        for (i, &b) in self.basis.iter().enumerate() {
            col_values[b] = self.rhs[i].clone();
        }
        let mut assignment = vec![Rational::zero(); user_cols];
        for (j, k) in self.col_kinds.iter().enumerate() {
            match k {
                ColKind::Plus(i) => assignment[*i] += &col_values[j],
                ColKind::Minus(i) => assignment[*i] -= &col_values[j],
                _ => {}
            }
        }
        let objective = match lp.direction {
            Direction::Maximize => value2,
            Direction::Minimize => -value2,
        };
        Ok(LpSolution {
            outcome: LpOutcome::Optimal {
                objective,
                assignment,
            },
            pivots: self.pivots - pivots_before,
            rows: lp.num_constraints(),
            cols: user_cols,
        })
    }

    /// Runs the simplex method maximizing `obj` (given over original columns).
    /// Returns the optimal value and, if unbounded, the entering column that
    /// witnessed unboundedness.
    fn run_simplex(
        &mut self,
        obj: &[Rational],
        interrupt: &Interrupt,
    ) -> Result<(Rational, Option<usize>), Interrupted> {
        // Reduced cost row: start from obj and eliminate basic columns.
        let ncols = self.ncols;
        let mut z = QVector::from_vec(obj.to_vec());
        let mut z_rhs = Rational::zero();
        for (i, &b) in self.basis.iter().enumerate() {
            let factor = z[b].clone();
            if factor.is_zero() {
                continue;
            }
            z.sub_scaled_in_place(&self.rows[i], &factor);
            z_rhs -= &(&self.rhs[i] * &factor);
        }
        loop {
            if self.pivots.is_multiple_of(INTERRUPT_POLL_PERIOD) && interrupt.is_raised() {
                return Err(Interrupted);
            }
            // Bland's rule: smallest-index column with positive reduced cost.
            let entering = (0..ncols).find(|&j| z[j].is_positive());
            let Some(col) = entering else {
                // optimum: objective value = -z_rhs
                return Ok((-z_rhs, None));
            };
            // Ratio test.
            let mut best: Option<(Rational, usize, usize)> = None; // (ratio, basic var, row)
            for (i, row) in self.rows.iter().enumerate() {
                if row[col].is_positive() {
                    let ratio = &self.rhs[i] / &row[col];
                    let candidate = (ratio, self.basis[i], i);
                    best = match best {
                        None => Some(candidate),
                        Some(cur) => {
                            if candidate.0 < cur.0 || (candidate.0 == cur.0 && candidate.1 < cur.1)
                            {
                                Some(candidate)
                            } else {
                                Some(cur)
                            }
                        }
                    };
                }
            }
            let Some((_, _, pivot_row)) = best else {
                return Ok((Rational::zero(), Some(col)));
            };
            self.pivot(pivot_row, col, &mut z, &mut z_rhs);
        }
    }

    /// Restores primal feasibility after rows with negative basic values were
    /// appended (the warm-started re-optimization step): dual-simplex pivots
    /// with a zero cost row, which every pivot trivially keeps dual-feasible,
    /// with least-index (Bland-style) tie-breaking. Returns `false` when some
    /// row is infeasible with no eligible pivot (the LP is infeasible).
    ///
    /// `max_pivots` bounds the work; exceeding it reports
    /// [`FeasibilityOutcome::GaveUp`] so the caller can rebuild from scratch
    /// (a belt-and-braces guard — least-index pivoting does not cycle).
    pub(crate) fn restore_feasibility(
        &mut self,
        interrupt: &Interrupt,
        max_pivots: usize,
    ) -> Result<FeasibilityOutcome, Interrupted> {
        let start = self.pivots;
        let mut zero_z = QVector::zeros(self.ncols);
        let mut zero_rhs = Rational::zero();
        loop {
            if self.pivots.is_multiple_of(INTERRUPT_POLL_PERIOD) && interrupt.is_raised() {
                return Err(Interrupted);
            }
            if self.pivots - start > max_pivots {
                return Ok(FeasibilityOutcome::GaveUp);
            }
            // Leaving row: smallest basic-variable index among infeasible rows.
            let leaving = self
                .rhs
                .iter()
                .enumerate()
                .filter(|(_, r)| r.is_negative())
                .map(|(i, _)| (self.basis[i], i))
                .min();
            let Some((_, row)) = leaving else {
                return Ok(FeasibilityOutcome::Feasible);
            };
            // Entering column: smallest index with a negative coefficient in
            // the leaving row (zero cost row makes every such ratio equal).
            let entering = (0..self.ncols).find(|&j| self.rows[row][j].is_negative());
            let Some(col) = entering else {
                return Ok(FeasibilityOutcome::Infeasible);
            };
            self.pivot(row, col, &mut zero_z, &mut zero_rhs);
        }
    }

    /// One pivot: normalise row `r` so column `c` becomes 1, eliminate `c`
    /// from every other row and from the reduced-cost row — all in place, no
    /// row allocation.
    pub(crate) fn pivot(&mut self, r: usize, c: usize, z: &mut QVector, z_rhs: &mut Rational) {
        self.pivots += 1;
        let inv = self.rows[r][c].recip();
        let mut prow = std::mem::take(&mut self.rows[r]);
        let mut prhs = std::mem::take(&mut self.rhs[r]);
        prow.scale_in_place(&inv);
        prhs = &prhs * &inv;
        for (row, rhs) in self.rows.iter_mut().zip(self.rhs.iter_mut()) {
            if row.dim() == 0 {
                continue; // the taken-out pivot row itself
            }
            let factor = row[c].clone();
            if factor.is_zero() {
                continue;
            }
            row.sub_scaled_in_place(&prow, &factor);
            *rhs -= &(&prhs * &factor);
        }
        let zf = z[c].clone();
        if !zf.is_zero() {
            z.sub_scaled_in_place(&prow, &zf);
            *z_rhs -= &(&prhs * &zf);
        }
        self.rows[r] = prow;
        self.rhs[r] = prhs;
        self.basis[r] = c;
    }

    /// After phase 1, pivot artificial variables out of the basis where
    /// possible and drop rows that became identically zero.
    fn purge_artificials(&mut self) {
        let ncols = self.ncols;
        let mut dummy = QVector::zeros(ncols);
        let mut dummy_rhs = Rational::zero();
        let mut i = 0;
        while i < self.rows.len() {
            if self.col_kinds[self.basis[i]] == ColKind::Artificial {
                // Try to pivot on any non-artificial column with a non-zero entry.
                let cand = (0..ncols).find(|&j| {
                    self.col_kinds[j] != ColKind::Artificial && !self.rows[i][j].is_zero()
                });
                match cand {
                    Some(c) => {
                        self.pivot(i, c, &mut dummy, &mut dummy_rhs);
                        i += 1;
                    }
                    None => {
                        // Redundant row (all structural coefficients zero).
                        self.rows.remove(i);
                        self.rhs.remove(i);
                        self.basis.remove(i);
                    }
                }
            } else {
                i += 1;
            }
        }
        // Forbid artificial columns from ever entering again by zeroing them.
        for row in &mut self.rows {
            for (j, k) in self.col_kinds.iter().enumerate() {
                if *k == ColKind::Artificial && !row[j].is_zero() {
                    row[j] = Rational::zero();
                }
            }
        }
    }
}

/// Result of [`Tableau::restore_feasibility`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum FeasibilityOutcome {
    /// All right-hand sides are non-negative again.
    Feasible,
    /// Some row cannot be made feasible: the LP is infeasible.
    Infeasible,
    /// Pivot budget exhausted; rebuild from scratch.
    GaveUp,
}

/// Convenience helper: checks whether the system `A x <= b` (rows given as
/// `(coeffs, rhs)` over `dim` free variables) has a rational solution, and if
/// so returns one.
pub fn feasible_point(rows: &[(QVector, Rational)], dim: usize) -> Option<QVector> {
    let mut lp = LinearProgram::new();
    let vars: Vec<VarId> = (0..dim).map(|i| lp.add_free_var(format!("x{i}"))).collect();
    for (coeffs, rhs) in rows {
        let terms: Vec<(VarId, Rational)> = coeffs
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.is_zero())
            .map(|(i, c)| (vars[i], c.clone()))
            .collect();
        lp.add_constraint(Constraint::new(terms, Relation::Le, rhs.clone()));
    }
    lp.maximize(vec![]);
    match lp.solve().outcome {
        LpOutcome::Optimal { assignment, .. } => Some(QVector::from_vec(assignment)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn q(n: i64) -> Rational {
        Rational::from(n)
    }

    #[test]
    fn simple_maximization() {
        // maximize 3x + 2y s.t. x + y <= 4, x + 3y <= 6, x,y >= 0 => (4,0), obj 12
        let mut lp = LinearProgram::new();
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.add_constraint(Constraint::new(
            vec![(x, q(1)), (y, q(1))],
            Relation::Le,
            q(4),
        ));
        lp.add_constraint(Constraint::new(
            vec![(x, q(1)), (y, q(3))],
            Relation::Le,
            q(6),
        ));
        lp.maximize(vec![(x, q(3)), (y, q(2))]);
        let sol = lp.solve();
        assert_eq!(sol.objective(), Some(&q(12)));
        assert_eq!(sol.assignment().unwrap()[0], q(4));
        assert_eq!(sol.assignment().unwrap()[1], q(0));
    }

    #[test]
    fn fractional_optimum() {
        // maximize x + y s.t. x + 2y <= 4, 3x + y <= 6 => x=8/5, y=6/5, obj 14/5
        let mut lp = LinearProgram::new();
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.add_constraint(Constraint::new(
            vec![(x, q(1)), (y, q(2))],
            Relation::Le,
            q(4),
        ));
        lp.add_constraint(Constraint::new(
            vec![(x, q(3)), (y, q(1))],
            Relation::Le,
            q(6),
        ));
        lp.maximize(vec![(x, q(1)), (y, q(1))]);
        let sol = lp.solve();
        assert_eq!(sol.objective(), Some(&Rational::from_ints(14, 5)));
    }

    #[test]
    fn infeasible_system() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var("x");
        lp.add_constraint(Constraint::new(vec![(x, q(1))], Relation::Le, q(1)));
        lp.add_constraint(Constraint::new(vec![(x, q(1))], Relation::Ge, q(2)));
        lp.maximize(vec![(x, q(1))]);
        assert_eq!(lp.solve().outcome, LpOutcome::Infeasible);
    }

    #[test]
    fn unbounded_program() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.add_constraint(Constraint::new(
            vec![(x, q(1)), (y, q(-1))],
            Relation::Le,
            q(1),
        ));
        lp.maximize(vec![(x, q(1))]);
        match lp.solve().outcome {
            LpOutcome::Unbounded { ray } => {
                // Along the ray the objective strictly increases and the
                // constraint x - y <= 1 keeps holding.
                assert!(ray[0].is_positive());
                assert!(&ray[0] - &ray[1] <= Rational::zero());
            }
            other => panic!("expected unbounded, got {other:?}"),
        }
    }

    #[test]
    fn equality_constraints() {
        // maximize x s.t. x + y == 3, y >= 1 => x = 2
        let mut lp = LinearProgram::new();
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.add_constraint(Constraint::new(
            vec![(x, q(1)), (y, q(1))],
            Relation::Eq,
            q(3),
        ));
        lp.add_constraint(Constraint::new(vec![(y, q(1))], Relation::Ge, q(1)));
        lp.maximize(vec![(x, q(1))]);
        let sol = lp.solve();
        assert_eq!(sol.objective(), Some(&q(2)));
    }

    #[test]
    fn free_variables_and_minimization() {
        // minimize x s.t. x >= -5 with x free => -5
        let mut lp = LinearProgram::new();
        let x = lp.add_free_var("x");
        lp.add_constraint(Constraint::new(vec![(x, q(1))], Relation::Ge, q(-5)));
        lp.minimize(vec![(x, q(1))]);
        let sol = lp.solve();
        assert_eq!(sol.objective(), Some(&q(-5)));
        assert_eq!(sol.assignment().unwrap()[0], q(-5));
    }

    #[test]
    fn degenerate_does_not_cycle() {
        // A classic degenerate instance; Bland's rule must terminate.
        let mut lp = LinearProgram::new();
        let x1 = lp.add_var("x1");
        let x2 = lp.add_var("x2");
        let x3 = lp.add_var("x3");
        let x4 = lp.add_var("x4");
        lp.add_constraint(Constraint::new(
            vec![
                (x1, Rational::from_ints(1, 4)),
                (x2, q(-8)),
                (x3, q(-1)),
                (x4, q(9)),
            ],
            Relation::Le,
            q(0),
        ));
        lp.add_constraint(Constraint::new(
            vec![
                (x1, Rational::from_ints(1, 2)),
                (x2, q(-12)),
                (x3, Rational::from_ints(-1, 2)),
                (x4, q(3)),
            ],
            Relation::Le,
            q(0),
        ));
        lp.add_constraint(Constraint::new(vec![(x3, q(1))], Relation::Le, q(1)));
        lp.maximize(vec![
            (x1, Rational::from_ints(3, 4)),
            (x2, q(-20)),
            (x3, Rational::from_ints(1, 2)),
            (x4, q(-6)),
        ]);
        let sol = lp.solve();
        assert_eq!(sol.objective(), Some(&Rational::from_ints(5, 4)));
    }

    #[test]
    fn feasible_point_helper() {
        // x <= 3, -x <= -1  (i.e. 1 <= x <= 3)
        let rows = vec![
            (QVector::from_i64(&[1]), q(3)),
            (QVector::from_i64(&[-1]), q(-1)),
        ];
        let p = feasible_point(&rows, 1).unwrap();
        assert!(p[0] >= q(1) && p[0] <= q(3));
        let rows_empty = vec![
            (QVector::from_i64(&[1]), q(1)),
            (QVector::from_i64(&[-1]), q(-2)),
        ];
        assert!(feasible_point(&rows_empty, 1).is_none());
    }

    #[test]
    fn raised_interrupt_stops_the_solve() {
        let mut lp = LinearProgram::new();
        let vars: Vec<VarId> = (0..6).map(|i| lp.add_var(format!("x{i}"))).collect();
        for (i, &v) in vars.iter().enumerate() {
            lp.add_constraint(Constraint::new(vec![(v, q(1))], Relation::Le, q(i as i64)));
        }
        lp.maximize(vars.iter().map(|&v| (v, q(1))).collect());
        // Already-raised interrupt: polled before the first pivot.
        assert!(lp.solve_interruptible(&Interrupt::new(|| true)).is_none());
        // Unarmed interrupt: solves normally.
        let sol = lp.solve_interruptible(&Interrupt::never()).unwrap();
        assert_eq!(sol.objective(), Some(&q(15)));
    }

    #[test]
    fn interrupt_polls_the_closure() {
        let polls = std::sync::Arc::new(AtomicUsize::new(0));
        let seen = polls.clone();
        let interrupt = Interrupt::new(move || {
            seen.fetch_add(1, Ordering::Relaxed);
            false
        });
        let mut lp = LinearProgram::new();
        let x = lp.add_var("x");
        lp.add_constraint(Constraint::new(vec![(x, q(1))], Relation::Le, q(7)));
        lp.maximize(vec![(x, q(1))]);
        let sol = lp.solve_interruptible(&interrupt).unwrap();
        assert_eq!(sol.objective(), Some(&q(7)));
        assert!(polls.load(Ordering::Relaxed) > 0, "closure must be polled");
    }

    proptest! {
        /// Solutions returned by the solver must satisfy every constraint, and
        /// the reported objective must match the assignment.
        #[test]
        fn prop_solution_feasible(
            coeffs in prop::collection::vec(prop::collection::vec(-5i64..=5, 3), 1..5),
            rhs in prop::collection::vec(0i64..=20, 5),
            obj in prop::collection::vec(-3i64..=3, 3),
        ) {
            let mut lp = LinearProgram::new();
            let vars: Vec<VarId> = (0..3).map(|i| lp.add_var(format!("x{i}"))).collect();
            for (i, row) in coeffs.iter().enumerate() {
                let terms = row.iter().enumerate().map(|(j, &c)| (vars[j], q(c))).collect();
                lp.add_constraint(Constraint::new(terms, Relation::Le, q(rhs[i])));
            }
            lp.maximize(obj.iter().enumerate().map(|(j, &c)| (vars[j], q(c))).collect());
            let sol = lp.solve();
            match sol.outcome {
                LpOutcome::Infeasible => {
                    // rhs >= 0 and x = 0 is always feasible for <= constraints: impossible.
                    prop_assert!(false, "origin is feasible, solver said infeasible");
                }
                LpOutcome::Unbounded { .. } => {}
                LpOutcome::Optimal { objective, assignment } => {
                    for (i, row) in coeffs.iter().enumerate() {
                        let lhs: Rational = row.iter().enumerate()
                            .map(|(j, &c)| &q(c) * &assignment[j])
                            .sum();
                        prop_assert!(lhs <= q(rhs[i]));
                    }
                    let recomputed: Rational = obj.iter().enumerate()
                        .map(|(j, &c)| &q(c) * &assignment[j])
                        .sum();
                    prop_assert_eq!(recomputed, objective);
                    for v in &assignment {
                        prop_assert!(!v.is_negative());
                    }
                }
            }
        }
    }
}
