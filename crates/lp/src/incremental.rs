//! Warm-started incremental linear programming.
//!
//! The synthesis loop of the paper solves a *growing* sequence of LPs: every
//! counterexample iteration adds one `δ_j` variable and two constraint rows
//! to the previous instance and re-optimizes. Solving each instance from an
//! empty tableau redoes all the work of the previous iterations;
//! [`IncrementalLp`] instead keeps the final tableau and basis of the last
//! solve alive and re-optimizes in two warm-started steps:
//!
//! 1. **Feasibility restoration (dual simplex).** New rows are expressed in
//!    terms of the current basis (one elimination sweep) and enter with their
//!    slack basic; rows violated by the current optimum show up as negative
//!    right-hand sides. Dual-simplex pivots with a zero cost row — which
//!    every pivot trivially keeps dual-feasible — drive them non-negative
//!    with least-index anti-cycling tie-breaks.
//! 2. **Primal re-optimization.** The real objective (extended over any new
//!    variables) is re-eliminated against the warm basis and ordinary primal
//!    simplex finishes the job. Only the handful of pivots the new rows make
//!    necessary are performed; the bulk of the basis survives.
//!
//! The outcome is exactly an optimum of the same exact-rational LP — the
//! warm start changes *time*, never *answers* (degenerate optima may pick a
//! different optimal vertex, as any pivot-order change can).

use crate::simplex::{
    ColKind, Constraint, Direction, FeasibilityOutcome, Interrupt, Interrupted, LinearProgram,
    LpSolution, Relation, Tableau, VarId, VarKind,
};
use termite_num::Rational;

/// Safety net for the dual phase: pivot budget per re-optimization before the
/// session falls back to a from-scratch solve. Least-index pivoting does not
/// cycle, so this should never trigger; it bounds the damage if it ever did.
const DUAL_PIVOT_BUDGET: usize = 100_000;

/// An incremental LP session: a [`LinearProgram`] that keeps its simplex
/// tableau warm between solves.
///
/// ```
/// use termite_lp::{Constraint, IncrementalLp, Relation};
/// use termite_num::Rational;
///
/// let mut lp = IncrementalLp::new();
/// let x = lp.add_var("x");
/// lp.add_constraint(Constraint::new(
///     vec![(x, Rational::from(1))],
///     Relation::Le,
///     Rational::from(10),
/// ));
/// lp.maximize(vec![(x, Rational::from(1))]);
/// let first = lp.solve().unwrap();
/// assert_eq!(first.objective(), Some(&Rational::from(10)));
///
/// // A cutting plane: the next solve starts from the previous basis.
/// lp.add_constraint(Constraint::new(
///     vec![(x, Rational::from(1))],
///     Relation::Le,
///     Rational::from(4),
/// ));
/// let second = lp.solve().unwrap();
/// assert_eq!(second.objective(), Some(&Rational::from(4)));
/// ```
#[derive(Debug)]
pub struct IncrementalLp {
    lp: LinearProgram,
    interrupt: Interrupt,
    warm: Option<Warm>,
    /// Caller-assigned tag of each mirrored constraint (parallel to
    /// `lp.constraints`).
    tags: Vec<RowTag>,
    /// Solves served by the warm path (dual restoration from a live basis).
    warm_solves: usize,
    /// Solves that rebuilt the tableau from scratch.
    cold_solves: usize,
    /// Process-unique session identity, stamped into snapshots so a
    /// [`restore`](Self::restore) can reject a snapshot of *another*
    /// session whose row/variable counts happen to line up.
    session: u64,
}

impl Default for IncrementalLp {
    fn default() -> Self {
        IncrementalLp::new()
    }
}

/// Source of the process-unique [`IncrementalLp::session`] identities.
static NEXT_SESSION: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// A caller-assigned grouping label for constraint rows.
///
/// Tags let a session distinguish structurally different row populations —
/// e.g. rows shared by every lexicographic synthesis level versus rows
/// specific to one level — so a [`snapshot`](IncrementalLp::snapshot) /
/// [`restore`](IncrementalLp::restore) cycle can assert that only the
/// intended group was rolled back, and counters can report per-group sizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RowTag(pub u32);

impl RowTag {
    /// The default tag of rows added through [`IncrementalLp::add_constraint`].
    pub const UNTAGGED: RowTag = RowTag(0);
}

/// A saved session state: the mirrored program boundary plus a deep copy of
/// the live tableau (when one existed). Produced by
/// [`IncrementalLp::snapshot`], consumed by [`IncrementalLp::restore`].
///
/// Restoring rolls the session back to exactly the captured state — rows and
/// variables added after the snapshot are dropped, and the captured basis
/// (with all its pivots) is reinstated, so the next solve warm-starts from
/// the snapshot's basis instead of an empty tableau.
#[derive(Debug)]
pub struct LpSnapshot {
    /// Identity of the session the snapshot was taken from.
    session: u64,
    num_vars: usize,
    num_constraints: usize,
    objective: Vec<(VarId, Rational)>,
    direction: Direction,
    warm: Option<Warm>,
}

impl LpSnapshot {
    /// Number of declared variables at capture time.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of constraints at capture time.
    pub fn num_constraints(&self) -> usize {
        self.num_constraints
    }

    /// `true` when the snapshot carries a live basis (the session had solved
    /// at least once, and the program was not infeasible).
    pub fn has_basis(&self) -> bool {
        self.warm.is_some()
    }
}

/// The live tableau plus bookkeeping about how much of `lp` it has absorbed.
#[derive(Clone)]
struct Warm {
    t: Tableau,
    plus_col: Vec<usize>,
    minus_col: Vec<Option<usize>>,
    /// Number of `lp` variables already present as tableau columns.
    synced_vars: usize,
    /// Number of `lp` constraints already present as tableau rows.
    synced_constraints: usize,
}

impl std::fmt::Debug for Warm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Warm")
            .field("rows", &self.t.rows.len())
            .field("cols", &self.t.ncols)
            .field("pivots", &self.t.pivots)
            .finish()
    }
}

impl IncrementalLp {
    /// Creates an empty session (maximization of 0 by default).
    pub fn new() -> Self {
        IncrementalLp {
            lp: LinearProgram::new(),
            interrupt: Interrupt::never(),
            warm: None,
            tags: Vec::new(),
            warm_solves: 0,
            cold_solves: 0,
            session: NEXT_SESSION.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        }
    }

    /// Installs the interruption source polled inside the pivot loops.
    pub fn set_interrupt(&mut self, interrupt: Interrupt) {
        self.interrupt = interrupt;
    }

    /// Declares a non-negative decision variable. The tableau column is
    /// materialised lazily at the next [`solve`](Self::solve).
    pub fn add_var(&mut self, name: impl Into<String>) -> VarId {
        self.lp.add_var(name)
    }

    /// Declares a sign-unrestricted decision variable.
    pub fn add_free_var(&mut self, name: impl Into<String>) -> VarId {
        self.lp.add_free_var(name)
    }

    /// Number of declared decision variables.
    pub fn num_vars(&self) -> usize {
        self.lp.num_vars()
    }

    /// Number of constraints added so far.
    pub fn num_constraints(&self) -> usize {
        self.lp.num_constraints()
    }

    /// Adds a constraint; the warm tableau absorbs it at the next solve.
    /// `Le`/`Ge` rows take the warm path; an `Eq` row forces the next solve
    /// to rebuild from scratch (equalities need an artificial variable).
    pub fn add_constraint(&mut self, c: Constraint) {
        self.add_constraint_tagged(c, RowTag::UNTAGGED);
    }

    /// Adds a constraint carrying a caller-assigned [`RowTag`].
    pub fn add_constraint_tagged(&mut self, c: Constraint, tag: RowTag) {
        if c.relation == Relation::Eq {
            self.warm = None;
        }
        self.tags.push(tag);
        self.lp.add_constraint(c);
    }

    /// Number of constraints carrying the given tag.
    pub fn rows_tagged(&self, tag: RowTag) -> usize {
        self.tags.iter().filter(|t| **t == tag).count()
    }

    /// Solves served warm (dual restoration from a live basis) so far.
    pub fn warm_solves(&self) -> usize {
        self.warm_solves
    }

    /// Solves that rebuilt the tableau from scratch so far.
    pub fn cold_solves(&self) -> usize {
        self.cold_solves
    }

    /// Captures the current session state: program boundary, objective, and
    /// a deep copy of the live basis (when one exists). [`restore`] rolls
    /// back to it.
    ///
    /// [`restore`]: Self::restore
    pub fn snapshot(&self) -> LpSnapshot {
        LpSnapshot {
            session: self.session,
            num_vars: self.lp.num_vars(),
            num_constraints: self.lp.num_constraints(),
            objective: self.lp.objective.clone(),
            direction: self.lp.direction,
            warm: self.warm.clone(),
        }
    }

    /// Rolls the session back to a state captured by [`snapshot`]: variables
    /// and constraints added since are dropped (tags included) and the
    /// captured basis is reinstated, so the next solve warm-starts from the
    /// snapshot's pivots. Returns `true` when a live basis was reinstated.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot was taken from another session (identities
    /// are stamped at capture time, so a foreign snapshot is rejected even
    /// when its row/variable counts happen to line up with this program),
    /// or if it does not describe a prefix of the current program
    /// (variables/constraints were rolled back below its boundary already).
    ///
    /// [`snapshot`]: Self::snapshot
    pub fn restore(&mut self, snapshot: &LpSnapshot) -> bool {
        assert!(
            snapshot.session == self.session,
            "LpSnapshot of session {} does not describe a prefix of session {}",
            snapshot.session,
            self.session,
        );
        assert!(
            snapshot.num_vars <= self.lp.num_vars()
                && snapshot.num_constraints <= self.lp.num_constraints(),
            "LpSnapshot does not describe a prefix of this session \
             ({} vars / {} rows captured, {} / {} present)",
            snapshot.num_vars,
            snapshot.num_constraints,
            self.lp.num_vars(),
            self.lp.num_constraints(),
        );
        self.lp.names.truncate(snapshot.num_vars);
        self.lp.kinds.truncate(snapshot.num_vars);
        self.lp.constraints.truncate(snapshot.num_constraints);
        self.tags.truncate(snapshot.num_constraints);
        self.lp.objective = snapshot.objective.clone();
        self.lp.direction = snapshot.direction;
        self.warm = snapshot.warm.clone();
        self.warm.is_some()
    }

    /// Sets the objective to maximize (may extend over newly added
    /// variables; the reduced-cost row is rebuilt at every solve).
    pub fn maximize(&mut self, objective: Vec<(VarId, Rational)>) {
        self.lp.maximize(objective);
    }

    /// Sets the objective to minimize.
    pub fn minimize(&mut self, objective: Vec<(VarId, Rational)>) {
        self.lp.minimize(objective);
    }

    /// Read-only view of the mirrored program (for from-scratch comparison).
    pub fn program(&self) -> &LinearProgram {
        &self.lp
    }

    /// Solves the current program, warm-starting from the previous basis
    /// when one is available. Returns `None` when interrupted.
    pub fn solve(&mut self) -> Option<LpSolution> {
        if let Some(mut warm) = self.warm.take() {
            match self.solve_warm(&mut warm) {
                Ok(solution) => {
                    self.warm_solves += 1;
                    // An infeasible program leaves no feasible basis to keep.
                    if !matches!(solution.outcome, crate::LpOutcome::Infeasible) {
                        self.warm = Some(warm);
                    }
                    return Some(solution);
                }
                Err(WarmFailure::Interrupted) => return None,
                // Pivot budget exhausted: fall through to the cold path.
                Err(WarmFailure::Rebuild) => {}
            }
        }
        self.solve_cold()
    }

    fn solve_cold(&mut self) -> Option<LpSolution> {
        let (mut t, plus_col, minus_col) = Tableau::build(&self.lp);
        match t.first_solve(&self.lp, &plus_col, &minus_col, &self.interrupt) {
            Ok(solution) => {
                self.cold_solves += 1;
                // Keep the basis warm unless phase 1 failed (an infeasible
                // program leaves no feasible basis to restart from).
                if !matches!(solution.outcome, crate::LpOutcome::Infeasible) {
                    self.warm = Some(Warm {
                        t,
                        plus_col,
                        minus_col,
                        synced_vars: self.lp.num_vars(),
                        synced_constraints: self.lp.num_constraints(),
                    });
                }
                Some(solution)
            }
            Err(Interrupted) => None,
        }
    }

    /// The warm path: absorb pending variables and rows, restore primal
    /// feasibility with dual pivots, re-run primal simplex.
    fn solve_warm(&mut self, w: &mut Warm) -> Result<LpSolution, WarmFailure> {
        let pivots_before = w.t.pivots;

        // 1. Materialise columns for variables declared since the last solve.
        for v in w.synced_vars..self.lp.num_vars() {
            w.plus_col.push(w.t.ncols);
            Self::push_column(&mut w.t, ColKind::Plus(v));
            if self.lp.kinds[v] == VarKind::Free {
                w.minus_col.push(Some(w.t.ncols));
                Self::push_column(&mut w.t, ColKind::Minus(v));
            } else {
                w.minus_col.push(None);
            }
        }
        w.synced_vars = self.lp.num_vars();

        // 2. Append rows for constraints added since the last solve, each
        //    with a fresh basic slack, eliminated against the current basis.
        for ci in w.synced_constraints..self.lp.constraints.len() {
            let c = &self.lp.constraints[ci];
            // `add_constraint` drops the warm state on Eq rows, so only
            // inequalities reach this point.
            debug_assert_ne!(c.relation, Relation::Eq);
            let slack = w.t.ncols;
            Self::push_column(&mut w.t, ColKind::Slack);

            // Dense row in ≤-orientation: a·x ≥ b becomes −a·x ≤ −b, so the
            // slack always enters with coefficient +1 and goes basic.
            let flip = c.relation == Relation::Ge;
            let mut row = vec![Rational::zero(); w.t.ncols];
            for (v, k) in &c.terms {
                let k = if flip { -k } else { k.clone() };
                row[w.plus_col[v.0]] += &k;
                if let Some(mc) = w.minus_col[v.0] {
                    row[mc] -= &k;
                }
            }
            row[slack] = Rational::one();
            let mut row = termite_linalg::QVector::from_vec(row);
            let mut rhs = if flip { -&c.rhs } else { c.rhs.clone() };

            // Express the new row in terms of the current basis. Canonical
            // form makes the eliminations independent: basic column b_i is a
            // unit column, so subtracting `row[b_i] · row_i` zeroes exactly
            // that coefficient.
            for (i, &b) in w.t.basis.iter().enumerate() {
                let factor = row[b].clone();
                if factor.is_zero() {
                    continue;
                }
                row.sub_scaled_in_place(&w.t.rows[i], &factor);
                rhs -= &(&w.t.rhs[i] * &factor);
            }
            w.t.rows.push(row);
            w.t.rhs.push(rhs);
            w.t.basis.push(slack);
        }
        w.synced_constraints = self.lp.constraints.len();

        // 3. Dual phase: drive the (possibly negative) new right-hand sides
        //    non-negative.
        match w
            .t
            .restore_feasibility(&self.interrupt, DUAL_PIVOT_BUDGET)
            .map_err(|Interrupted| WarmFailure::Interrupted)?
        {
            FeasibilityOutcome::Feasible => {}
            FeasibilityOutcome::Infeasible => {
                return Ok(LpSolution {
                    outcome: crate::LpOutcome::Infeasible,
                    pivots: w.t.pivots - pivots_before,
                    rows: self.lp.num_constraints(),
                    cols: self.lp.num_vars(),
                });
            }
            FeasibilityOutcome::GaveUp => return Err(WarmFailure::Rebuild),
        }

        // 4. Primal phase with the real objective.
        w.t.optimize(
            &self.lp,
            &w.plus_col,
            &w.minus_col,
            &self.interrupt,
            pivots_before,
        )
        .map_err(|Interrupted| WarmFailure::Interrupted)
    }

    /// Appends one all-zero column to every row of the tableau.
    fn push_column(t: &mut Tableau, kind: ColKind) {
        t.col_kinds.push(kind);
        t.ncols += 1;
        for row in &mut t.rows {
            row.push(Rational::zero());
        }
    }
}

enum WarmFailure {
    Interrupted,
    Rebuild,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LpOutcome, Relation};
    use proptest::prelude::*;

    fn q(n: i64) -> Rational {
        Rational::from(n)
    }

    #[test]
    fn warm_resolve_matches_scratch_on_growing_cutting_planes() {
        let mut inc = IncrementalLp::new();
        let x = inc.add_var("x");
        let y = inc.add_var("y");
        inc.add_constraint(Constraint::new(
            vec![(x, q(1)), (y, q(1))],
            Relation::Le,
            q(10),
        ));
        inc.maximize(vec![(x, q(3)), (y, q(2))]);
        let first = inc.solve().unwrap();
        assert_eq!(first.objective(), Some(&q(30)));

        // Tighten with cuts one at a time; each warm solve must match a
        // from-scratch solve of the same program.
        let cuts = [
            Constraint::new(vec![(x, q(1))], Relation::Le, q(6)),
            Constraint::new(vec![(x, q(1)), (y, q(2))], Relation::Le, q(14)),
            Constraint::new(vec![(y, q(1))], Relation::Ge, q(2)),
        ];
        for cut in cuts {
            inc.add_constraint(cut);
            let warm = inc.solve().unwrap();
            let scratch = inc.program().solve();
            assert_eq!(warm.objective(), scratch.objective());
        }
        assert_eq!(inc.solve().unwrap().objective(), Some(&q(3 * 6 + 2 * 4)));
    }

    #[test]
    fn new_variables_join_the_warm_tableau() {
        let mut inc = IncrementalLp::new();
        let x = inc.add_var("x");
        inc.add_constraint(Constraint::new(vec![(x, q(1))], Relation::Le, q(5)));
        inc.maximize(vec![(x, q(1))]);
        assert_eq!(inc.solve().unwrap().objective(), Some(&q(5)));

        // The CEGIS pattern: a new δ-style variable plus rows coupling it to
        // the existing ones, objective extended.
        let d = inc.add_var("delta");
        inc.add_constraint(Constraint::new(vec![(d, q(1))], Relation::Le, q(1)));
        inc.add_constraint(Constraint::new(
            vec![(x, q(1)), (d, q(-1))],
            Relation::Ge,
            q(0),
        ));
        inc.maximize(vec![(x, q(1)), (d, q(1))]);
        let sol = inc.solve().unwrap();
        assert_eq!(sol.objective(), Some(&q(6)));
        assert_eq!(sol.assignment().unwrap()[d.0], q(1));
    }

    #[test]
    fn infeasible_cut_is_detected_and_session_recovers() {
        let mut inc = IncrementalLp::new();
        let x = inc.add_var("x");
        inc.add_constraint(Constraint::new(vec![(x, q(1))], Relation::Le, q(5)));
        inc.maximize(vec![(x, q(1))]);
        assert_eq!(inc.solve().unwrap().objective(), Some(&q(5)));
        inc.add_constraint(Constraint::new(vec![(x, q(1))], Relation::Ge, q(7)));
        assert_eq!(inc.solve().unwrap().outcome, LpOutcome::Infeasible);
        // The next solve rebuilds cold and must agree with scratch again.
        assert_eq!(inc.solve().unwrap().outcome, LpOutcome::Infeasible);
    }

    #[test]
    fn equality_constraint_falls_back_to_cold_solve() {
        let mut inc = IncrementalLp::new();
        let x = inc.add_var("x");
        let y = inc.add_var("y");
        inc.add_constraint(Constraint::new(
            vec![(x, q(1)), (y, q(1))],
            Relation::Le,
            q(8),
        ));
        inc.maximize(vec![(x, q(1)), (y, q(2))]);
        assert_eq!(inc.solve().unwrap().objective(), Some(&q(16)));
        inc.add_constraint(Constraint::new(vec![(y, q(1))], Relation::Eq, q(3)));
        let sol = inc.solve().unwrap();
        assert_eq!(sol.objective(), inc.program().solve().objective());
        assert_eq!(sol.objective(), Some(&q(11)));
    }

    #[test]
    fn unbounded_then_bounded_by_a_cut() {
        let mut inc = IncrementalLp::new();
        let x = inc.add_var("x");
        inc.maximize(vec![(x, q(1))]);
        assert!(matches!(
            inc.solve().unwrap().outcome,
            LpOutcome::Unbounded { .. }
        ));
        inc.add_constraint(Constraint::new(vec![(x, q(1))], Relation::Le, q(9)));
        assert_eq!(inc.solve().unwrap().objective(), Some(&q(9)));
    }

    #[test]
    fn interrupted_session_returns_none() {
        let mut inc = IncrementalLp::new();
        let x = inc.add_var("x");
        inc.add_constraint(Constraint::new(vec![(x, q(1))], Relation::Le, q(5)));
        inc.maximize(vec![(x, q(1))]);
        inc.set_interrupt(Interrupt::new(|| true));
        assert!(inc.solve().is_none());
        inc.set_interrupt(Interrupt::never());
        assert_eq!(inc.solve().unwrap().objective(), Some(&q(5)));
    }

    #[test]
    fn snapshot_restore_rolls_back_rows_vars_and_basis() {
        let shared = RowTag(1);
        let level = RowTag(2);
        let mut inc = IncrementalLp::new();
        let x = inc.add_var("x");
        inc.add_constraint_tagged(Constraint::new(vec![(x, q(1))], Relation::Le, q(9)), shared);
        inc.maximize(vec![(x, q(1))]);
        assert_eq!(inc.solve().unwrap().objective(), Some(&q(9)));
        let snap = inc.snapshot();
        assert!(snap.has_basis());
        assert_eq!((snap.num_vars(), snap.num_constraints()), (1, 1));

        // A "level": one extra variable and two extra rows, then roll back.
        let y = inc.add_var("y");
        inc.add_constraint_tagged(Constraint::new(vec![(y, q(1))], Relation::Le, q(3)), level);
        inc.add_constraint_tagged(
            Constraint::new(vec![(x, q(1)), (y, q(1))], Relation::Le, q(7)),
            level,
        );
        inc.maximize(vec![(x, q(1)), (y, q(1))]);
        assert_eq!(inc.solve().unwrap().objective(), Some(&q(7)));
        assert_eq!(inc.rows_tagged(level), 2);

        assert!(inc.restore(&snap), "the snapshot carried a live basis");
        assert_eq!(inc.num_vars(), 1);
        assert_eq!(inc.num_constraints(), 1);
        assert_eq!(inc.rows_tagged(level), 0);
        assert_eq!(inc.rows_tagged(shared), 1);
        // The restored objective is the snapshot's; the solve is warm.
        let warm_before = inc.warm_solves();
        assert_eq!(inc.solve().unwrap().objective(), Some(&q(9)));
        assert_eq!(inc.warm_solves(), warm_before + 1);

        // A different second level on the same restored base.
        let z = inc.add_var("z");
        inc.add_constraint_tagged(Constraint::new(vec![(z, q(1))], Relation::Le, q(5)), level);
        inc.maximize(vec![(x, q(1)), (z, q(1))]);
        let warm = inc.solve().unwrap();
        assert_eq!(warm.objective(), Some(&q(14)));
        assert_eq!(warm.objective(), inc.program().solve().objective());
    }

    #[test]
    fn restore_is_reusable_and_counts_solve_kinds() {
        let mut inc = IncrementalLp::new();
        let x = inc.add_var("x");
        inc.maximize(vec![(x, q(1))]);
        // Priming solve on the constraint-free program: cold, zero pivots,
        // unbounded (no rows bound x). An unbounded solve keeps its basis.
        assert!(matches!(
            inc.solve().unwrap().outcome,
            LpOutcome::Unbounded { .. }
        ));
        assert_eq!((inc.cold_solves(), inc.warm_solves()), (1, 0));
        let baseline = inc.snapshot();

        for bound in [4i64, 6, 2] {
            assert!(inc.restore(&baseline));
            inc.add_constraint(Constraint::new(vec![(x, q(1))], Relation::Le, q(bound)));
            assert_eq!(inc.solve().unwrap().objective(), Some(&q(bound)));
        }
        assert_eq!(inc.cold_solves(), 1, "every restored solve stayed warm");
        assert_eq!(inc.warm_solves(), 3);
    }

    #[test]
    #[should_panic(expected = "does not describe a prefix")]
    fn restore_of_a_foreign_snapshot_panics() {
        let mut big = IncrementalLp::new();
        let x = big.add_var("x");
        big.add_constraint(Constraint::new(vec![(x, q(1))], Relation::Le, q(1)));
        let snap = big.snapshot();
        let mut small = IncrementalLp::new();
        small.restore(&snap);
    }

    #[test]
    #[should_panic(expected = "does not describe a prefix")]
    fn restore_rejects_a_foreign_snapshot_of_identical_shape() {
        // Same variable and row counts, different session: the size check
        // alone would accept this and silently install the wrong tableau.
        let mut a = IncrementalLp::new();
        let xa = a.add_var("x");
        a.add_constraint(Constraint::new(vec![(xa, q(1))], Relation::Le, q(1)));
        a.maximize(vec![(xa, q(1))]);
        a.solve().unwrap();
        let snap = a.snapshot();

        let mut b = IncrementalLp::new();
        let xb = b.add_var("x");
        b.add_constraint(Constraint::new(vec![(xb, q(1))], Relation::Le, q(100)));
        b.maximize(vec![(xb, q(1))]);
        b.solve().unwrap();
        b.restore(&snap);
    }

    proptest! {
        /// Incremental vs from-scratch agreement: grow a random LP one
        /// constraint at a time; at every step the warm session and a cold
        /// `LinearProgram::solve` must report the same outcome kind and, at
        /// an optimum, the same objective value with a feasible assignment.
        #[test]
        fn prop_incremental_matches_scratch(
            coeffs in prop::collection::vec(prop::collection::vec(-4i64..=4, 3), 2..7),
            rhs in prop::collection::vec(-6i64..=15, 7),
            obj in prop::collection::vec(-3i64..=3, 3),
            ge_mask in prop::collection::vec(any::<bool>(), 7),
        ) {
            let mut inc = IncrementalLp::new();
            let vars: Vec<VarId> = (0..3).map(|i| inc.add_var(format!("x{i}"))).collect();
            inc.maximize(obj.iter().enumerate().map(|(j, &c)| (vars[j], q(c))).collect());
            for (i, row) in coeffs.iter().enumerate() {
                let terms: Vec<(VarId, Rational)> = row
                    .iter()
                    .enumerate()
                    .map(|(j, &c)| (vars[j], q(c)))
                    .collect();
                // Mix of ≤ and ≥ rows exercises both the slack orientation
                // and genuinely infeasible additions.
                let relation = if ge_mask[i] { Relation::Ge } else { Relation::Le };
                inc.add_constraint(Constraint::new(terms, relation, q(rhs[i])));

                let warm = inc.solve().expect("no interrupt armed");
                let scratch = inc.program().solve();
                match (&warm.outcome, &scratch.outcome) {
                    (LpOutcome::Infeasible, LpOutcome::Infeasible) => {}
                    (LpOutcome::Unbounded { .. }, LpOutcome::Unbounded { .. }) => {}
                    (
                        LpOutcome::Optimal { objective: wo, assignment: wa },
                        LpOutcome::Optimal { objective: so, .. },
                    ) => {
                        prop_assert_eq!(wo, so, "objective mismatch at step {}", i);
                        // The warm assignment must be feasible for every
                        // constraint added so far.
                        for k in 0..=i {
                            let lhs: Rational = coeffs[k]
                                .iter()
                                .enumerate()
                                .map(|(j, &c)| &q(c) * &wa[j])
                                .sum();
                            if ge_mask[k] {
                                prop_assert!(lhs >= q(rhs[k]));
                            } else {
                                prop_assert!(lhs <= q(rhs[k]));
                            }
                        }
                        for v in wa {
                            prop_assert!(!v.is_negative());
                        }
                    }
                    (w, s) => prop_assert!(false, "outcome kind mismatch at step {}: warm {:?} vs scratch {:?}", i, w, s),
                }
            }
        }
    }
}
