//! Exact linear programming by two-phase primal simplex.
//!
//! The synthesis algorithm of the paper (Definition 11) repeatedly solves
//! small linear programs `LP(V, Constraints(I))` over the Farkas multipliers
//! `γ_i ≥ 0` and the per-counterexample indicator variables `δ_j ∈ [0, 1]`,
//! maximising `Σ_j δ_j`. The polyhedra library also uses LP for emptiness and
//! redundancy checks, and the eager (Rank-style) baseline builds one large LP
//! per loop. All of these need *exact* rational arithmetic: a termination
//! certificate derived from a slightly-off floating point optimum would be
//! unsound.
//!
//! This crate implements a classic two-phase primal simplex over
//! [`termite_num::Rational`] with Bland's anti-cycling rule. Free variables
//! are handled by the builder via the standard positive/negative split.
//!
//! # Example
//!
//! ```
//! use termite_lp::{Constraint, LinearProgram, LpOutcome, Relation};
//! use termite_num::Rational;
//!
//! // maximize x + y  s.t.  x + 2y <= 4, 3x + y <= 6, x, y >= 0
//! let mut lp = LinearProgram::new();
//! let x = lp.add_var("x");
//! let y = lp.add_var("y");
//! lp.add_constraint(Constraint::new(
//!     vec![(x, Rational::from(1)), (y, Rational::from(2))],
//!     Relation::Le,
//!     Rational::from(4),
//! ));
//! lp.add_constraint(Constraint::new(
//!     vec![(x, Rational::from(3)), (y, Rational::from(1))],
//!     Relation::Le,
//!     Rational::from(6),
//! ));
//! lp.maximize(vec![(x, Rational::from(1)), (y, Rational::from(1))]);
//! let solution = lp.solve();
//! match solution.outcome {
//!     LpOutcome::Optimal { objective, .. } => {
//!         assert_eq!(objective, Rational::from_ints(14, 5));
//!     }
//!     _ => panic!("expected an optimum"),
//! }
//! ```

mod incremental;
mod simplex;

pub use incremental::{IncrementalLp, LpSnapshot, RowTag};
pub use simplex::{
    feasible_point, Constraint, Interrupt, LinearProgram, LpOutcome, LpSolution, Relation, VarId,
};
