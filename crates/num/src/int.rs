//! Arbitrary-precision signed integers with an inline small-value fast path.
//!
//! Representation: a tagged enum. Values fitting an `i64` live inline as
//! [`Repr::Small`] — no heap allocation, machine arithmetic with
//! overflow-checked promotion. Everything else spills over to [`Repr::Big`]:
//! sign (-1, 0, +1) plus a little-endian vector of 64-bit limbs, kept
//! normalised (no trailing zero limbs). The representation is canonical:
//! a value is `Big` **iff** it does not fit an `i64`, so derived equality and
//! hashing stay structural.
//!
//! Big-number algorithms are deliberately simple (schoolbook multiplication,
//! bitwise shift–subtract division): coefficient growth in termination
//! analysis stays modest, and almost all arithmetic takes the small path
//! anyway — simplicity buys confidence where it costs nothing.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Rem, Sub, SubAssign};
use std::str::FromStr;

/// An arbitrary-precision signed integer.
///
/// ```
/// use termite_num::Int;
/// let a: Int = "123456789012345678901234567890".parse().unwrap();
/// let b = Int::from(10_i64).pow(29);
/// assert!(a > b);
/// assert_eq!((&a - &a), Int::zero());
/// ```
#[derive(Clone, Debug)]
pub struct Int {
    repr: Repr,
}

#[derive(Clone, Debug)]
enum Repr {
    /// Inline value; used for every integer in `[i64::MIN, i64::MAX]`.
    Small(i64),
    /// Spill-over representation, only for values outside the `i64` range.
    Big {
        /// -1 or +1 (zero is always `Small(0)`).
        sign: i8,
        /// Little-endian 64-bit limbs, no trailing zeros.
        mag: Vec<u64>,
    },
}

impl Int {
    /// The integer 0.
    pub const fn zero() -> Self {
        Int {
            repr: Repr::Small(0),
        }
    }

    /// The integer 1.
    pub const fn one() -> Self {
        Int {
            repr: Repr::Small(1),
        }
    }

    /// The integer -1.
    pub const fn minus_one() -> Self {
        Int {
            repr: Repr::Small(-1),
        }
    }

    /// Returns `true` if this integer is zero.
    pub fn is_zero(&self) -> bool {
        matches!(self.repr, Repr::Small(0))
    }

    /// Returns `true` if this integer is one.
    pub fn is_one(&self) -> bool {
        matches!(self.repr, Repr::Small(1))
    }

    /// Returns `true` if this integer is strictly positive.
    pub fn is_positive(&self) -> bool {
        match &self.repr {
            Repr::Small(v) => *v > 0,
            Repr::Big { sign, .. } => *sign > 0,
        }
    }

    /// Returns `true` if this integer is strictly negative.
    pub fn is_negative(&self) -> bool {
        match &self.repr {
            Repr::Small(v) => *v < 0,
            Repr::Big { sign, .. } => *sign < 0,
        }
    }

    /// Sign of the integer: -1, 0 or +1.
    pub fn signum(&self) -> i32 {
        match &self.repr {
            Repr::Small(v) => v.signum() as i32,
            Repr::Big { sign, .. } => *sign as i32,
        }
    }

    /// `true` when the value is stored inline (fits an `i64`), `false` when
    /// it spilled over to the heap representation. Representation
    /// introspection for tests and benches; the two forms are otherwise
    /// indistinguishable.
    pub fn is_inline(&self) -> bool {
        matches!(self.repr, Repr::Small(_))
    }

    /// Absolute value.
    pub fn abs(&self) -> Int {
        match &self.repr {
            Repr::Small(v) => Int::from_i128_value((*v as i128).abs()),
            Repr::Big { mag, .. } => Int {
                repr: Repr::Big {
                    sign: 1,
                    mag: mag.clone(),
                },
            },
        }
    }

    /// Canonicalising constructor: trims trailing zero limbs and demotes to
    /// the inline representation whenever the value fits an `i64`.
    fn from_mag(sign: i8, mut mag: Vec<u64>) -> Int {
        while let Some(&0) = mag.last() {
            mag.pop();
        }
        match mag.len() {
            0 => Int::zero(),
            1 => {
                let m = mag[0];
                if sign >= 0 {
                    if m <= i64::MAX as u64 {
                        return Int {
                            repr: Repr::Small(m as i64),
                        };
                    }
                } else if m <= i64::MAX as u64 + 1 {
                    return Int {
                        repr: Repr::Small((m as i128).wrapping_neg() as i64),
                    };
                }
                Int {
                    repr: Repr::Big {
                        sign: if sign >= 0 { 1 } else { -1 },
                        mag,
                    },
                }
            }
            _ => Int {
                repr: Repr::Big {
                    sign: if sign >= 0 { 1 } else { -1 },
                    mag,
                },
            },
        }
    }

    /// Constructor from an `i128` intermediate (the overflow-checked
    /// promotion path of small×small arithmetic).
    fn from_i128_value(v: i128) -> Int {
        if let Ok(small) = i64::try_from(v) {
            return Int {
                repr: Repr::Small(small),
            };
        }
        let sign: i8 = if v > 0 { 1 } else { -1 };
        let m = v.unsigned_abs();
        let lo = m as u64;
        let hi = (m >> 64) as u64;
        let mag = if hi == 0 { vec![lo] } else { vec![lo, hi] };
        Int {
            repr: Repr::Big { sign, mag },
        }
    }

    /// Sign and magnitude limbs, using `buf` as scratch for inline values.
    /// The returned slice is empty iff the value is zero.
    fn sign_mag<'a>(&'a self, buf: &'a mut [u64; 1]) -> (i8, &'a [u64]) {
        match &self.repr {
            Repr::Small(0) => (0, &[]),
            Repr::Small(v) => {
                buf[0] = v.unsigned_abs();
                (if *v > 0 { 1 } else { -1 }, &buf[..])
            }
            Repr::Big { sign, mag } => (*sign, mag),
        }
    }

    /// Number of bits in the magnitude (0 for zero).
    pub fn bit_length(&self) -> usize {
        match &self.repr {
            Repr::Small(0) => 0,
            Repr::Small(v) => 64 - v.unsigned_abs().leading_zeros() as usize,
            Repr::Big { mag, .. } => Int::mag_bits(mag),
        }
    }

    fn mag_bit(mag: &[u64], i: usize) -> bool {
        let limb = i / 64;
        let off = i % 64;
        limb < mag.len() && (mag[limb] >> off) & 1 == 1
    }

    fn mag_bits(mag: &[u64]) -> usize {
        match mag.last() {
            None => 0,
            Some(&top) => (mag.len() - 1) * 64 + (64 - top.leading_zeros() as usize),
        }
    }

    fn mag_cmp(a: &[u64], b: &[u64]) -> Ordering {
        if a.len() != b.len() {
            return a.len().cmp(&b.len());
        }
        for i in (0..a.len()).rev() {
            if a[i] != b[i] {
                return a[i].cmp(&b[i]);
            }
        }
        Ordering::Equal
    }

    fn mag_add(a: &[u64], b: &[u64]) -> Vec<u64> {
        let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u128;
        for i in 0..long.len() {
            let mut s = carry + long[i] as u128;
            if i < short.len() {
                s += short[i] as u128;
            }
            out.push(s as u64);
            carry = s >> 64;
        }
        if carry > 0 {
            out.push(carry as u64);
        }
        out
    }

    /// Requires |a| >= |b|.
    fn mag_sub(a: &[u64], b: &[u64]) -> Vec<u64> {
        debug_assert!(Int::mag_cmp(a, b) != Ordering::Less);
        let mut out = Vec::with_capacity(a.len());
        let mut borrow = 0i128;
        for i in 0..a.len() {
            let mut d = a[i] as i128 - borrow;
            if i < b.len() {
                d -= b[i] as i128;
            }
            if d < 0 {
                d += 1i128 << 64;
                borrow = 1;
            } else {
                borrow = 0;
            }
            out.push(d as u64);
        }
        debug_assert_eq!(borrow, 0);
        out
    }

    fn mag_mul(a: &[u64], b: &[u64]) -> Vec<u64> {
        if a.is_empty() || b.is_empty() {
            return Vec::new();
        }
        let mut out = vec![0u64; a.len() + b.len()];
        for (i, &ai) in a.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &bj) in b.iter().enumerate() {
                let cur = out[i + j] as u128 + ai as u128 * bj as u128 + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + b.len();
            while carry > 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        out
    }

    fn mag_shl_bits(a: &[u64], bits: usize) -> Vec<u64> {
        if a.is_empty() {
            return Vec::new();
        }
        let limb_shift = bits / 64;
        let bit_shift = bits % 64;
        let mut out = vec![0u64; a.len() + limb_shift + 1];
        for (i, &x) in a.iter().enumerate() {
            out[i + limb_shift] |= x << bit_shift;
            if bit_shift != 0 {
                out[i + limb_shift + 1] |= x >> (64 - bit_shift);
            }
        }
        while let Some(&0) = out.last() {
            out.pop();
        }
        out
    }

    /// Magnitude division: returns (quotient, remainder) with remainder < divisor.
    /// Shift–subtract (restoring) division, bit by bit from the top.
    fn mag_divrem(a: &[u64], b: &[u64]) -> (Vec<u64>, Vec<u64>) {
        assert!(!b.is_empty(), "division by zero");
        if Int::mag_cmp(a, b) == Ordering::Less {
            return (Vec::new(), a.to_vec());
        }
        // Fast path: single-limb divisor.
        if b.len() == 1 {
            let d = b[0] as u128;
            let mut q = vec![0u64; a.len()];
            let mut rem: u128 = 0;
            for i in (0..a.len()).rev() {
                let cur = (rem << 64) | a[i] as u128;
                q[i] = (cur / d) as u64;
                rem = cur % d;
            }
            while let Some(&0) = q.last() {
                q.pop();
            }
            let r = if rem == 0 {
                Vec::new()
            } else {
                vec![rem as u64]
            };
            return (q, r);
        }
        let n_bits = Int::mag_bits(a);
        let mut quotient = vec![0u64; a.len()];
        let mut rem: Vec<u64> = Vec::new();
        for i in (0..n_bits).rev() {
            // rem = rem * 2 + bit_i(a)
            rem = Int::mag_shl_bits(&rem, 1);
            if Int::mag_bit(a, i) {
                if rem.is_empty() {
                    rem.push(1);
                } else {
                    rem[0] |= 1;
                }
            }
            if Int::mag_cmp(&rem, b) != Ordering::Less {
                rem = Int::mag_sub(&rem, b);
                quotient[i / 64] |= 1u64 << (i % 64);
            }
        }
        while let Some(&0) = quotient.last() {
            quotient.pop();
        }
        while let Some(&0) = rem.last() {
            rem.pop();
        }
        (quotient, rem)
    }

    /// Truncated division together with the remainder (`self = q*other + r`,
    /// `|r| < |other|`, `r` has the sign of `self`).
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn div_rem(&self, other: &Int) -> (Int, Int) {
        assert!(!other.is_zero(), "division by zero");
        // Small / small: machine division; the only overflow, i64::MIN / -1,
        // is absorbed by the i128 intermediate.
        if let (Repr::Small(a), Repr::Small(b)) = (&self.repr, &other.repr) {
            let (a, b) = (*a as i128, *b as i128);
            return (Int::from_i128_value(a / b), Int::from_i128_value(a % b));
        }
        if self.is_zero() {
            return (Int::zero(), Int::zero());
        }
        let (mut abuf, mut bbuf) = ([0u64; 1], [0u64; 1]);
        let (a_sign, a_mag) = self.sign_mag(&mut abuf);
        let (b_sign, b_mag) = other.sign_mag(&mut bbuf);
        let (qm, rm) = Int::mag_divrem(a_mag, b_mag);
        (
            Int::from_mag(a_sign * b_sign, qm),
            Int::from_mag(a_sign, rm),
        )
    }

    /// Euclidean division: quotient rounded towards negative infinity.
    ///
    /// ```
    /// use termite_num::Int;
    /// assert_eq!(Int::from(-7).div_floor(&Int::from(2)), Int::from(-4));
    /// assert_eq!(Int::from(7).div_floor(&Int::from(2)), Int::from(3));
    /// ```
    pub fn div_floor(&self, other: &Int) -> Int {
        let (q, r) = self.div_rem(other);
        if !r.is_zero() && (r.is_negative() != other.is_negative()) {
            q - Int::one()
        } else {
            q
        }
    }

    /// Euclidean division: quotient rounded towards positive infinity.
    pub fn div_ceil(&self, other: &Int) -> Int {
        let (q, r) = self.div_rem(other);
        if !r.is_zero() && (r.is_negative() == other.is_negative()) {
            q + Int::one()
        } else {
            q
        }
    }

    /// Raise to a small non-negative power.
    pub fn pow(&self, mut e: u32) -> Int {
        let mut base = self.clone();
        let mut acc = Int::one();
        while e > 0 {
            if e & 1 == 1 {
                acc = &acc * &base;
            }
            base = &base * &base;
            e >>= 1;
        }
        acc
    }

    /// Convert to `i64` if it fits. O(1): inline values *are* `i64`s, and the
    /// heap representation never holds a value that fits.
    pub fn to_i64(&self) -> Option<i64> {
        match &self.repr {
            Repr::Small(v) => Some(*v),
            Repr::Big { .. } => None,
        }
    }

    /// Convert to `i128` if it fits.
    pub fn to_i128(&self) -> Option<i128> {
        match &self.repr {
            Repr::Small(v) => Some(*v as i128),
            Repr::Big { sign, mag } => {
                if mag.len() > 2 {
                    return None;
                }
                let mut m: u128 = 0;
                for (i, &limb) in mag.iter().enumerate() {
                    m |= (limb as u128) << (64 * i);
                }
                if *sign >= 0 {
                    if m <= i128::MAX as u128 {
                        Some(m as i128)
                    } else {
                        None
                    }
                } else if m <= i128::MAX as u128 + 1 {
                    Some((m as i128).wrapping_neg())
                } else {
                    None
                }
            }
        }
    }

    /// Approximate conversion to `f64` (used only for reporting, never for
    /// decisions).
    pub fn to_f64(&self) -> f64 {
        match &self.repr {
            Repr::Small(v) => *v as f64,
            Repr::Big { sign, mag } => {
                let mut acc = 0.0f64;
                for &limb in mag.iter().rev() {
                    acc = acc * 2f64.powi(64) + limb as f64;
                }
                if *sign < 0 {
                    -acc
                } else {
                    acc
                }
            }
        }
    }
}

impl Default for Int {
    fn default() -> Self {
        Int::zero()
    }
}

impl From<i64> for Int {
    fn from(v: i64) -> Self {
        Int {
            repr: Repr::Small(v),
        }
    }
}

impl From<i32> for Int {
    fn from(v: i32) -> Self {
        Int::from(v as i64)
    }
}

impl From<u64> for Int {
    fn from(v: u64) -> Self {
        Int::from_i128_value(v as i128)
    }
}

impl From<usize> for Int {
    fn from(v: usize) -> Self {
        Int::from(v as u64)
    }
}

impl From<i128> for Int {
    fn from(v: i128) -> Self {
        Int::from_i128_value(v)
    }
}

/// Canonical representation makes structural equality correct: a value is
/// heap-allocated iff it does not fit inline, so equal values always share a
/// representation shape.
impl PartialEq for Int {
    fn eq(&self, other: &Self) -> bool {
        match (&self.repr, &other.repr) {
            (Repr::Small(a), Repr::Small(b)) => a == b,
            (Repr::Big { sign: s1, mag: m1 }, Repr::Big { sign: s2, mag: m2 }) => {
                s1 == s2 && m1 == m2
            }
            _ => false,
        }
    }
}
impl Eq for Int {}

impl Hash for Int {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Hash sign + magnitude limbs identically for both representations
        // (inline values never coexist with an equal heap value, but keeping
        // the scheme uniform is free and removes a class of mistakes).
        let mut buf = [0u64; 1];
        let (sign, mag) = self.sign_mag(&mut buf);
        sign.hash(state);
        mag.hash(state);
    }
}

impl PartialOrd for Int {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Int {
    fn cmp(&self, other: &Self) -> Ordering {
        match (&self.repr, &other.repr) {
            (Repr::Small(a), Repr::Small(b)) => a.cmp(b),
            // A heap value is outside the i64 range by the canonical-form
            // invariant, so its sign alone decides against any inline value.
            (Repr::Big { sign, .. }, Repr::Small(_)) => {
                if *sign > 0 {
                    Ordering::Greater
                } else {
                    Ordering::Less
                }
            }
            (Repr::Small(_), Repr::Big { sign, .. }) => {
                if *sign > 0 {
                    Ordering::Less
                } else {
                    Ordering::Greater
                }
            }
            (Repr::Big { sign: s1, mag: m1 }, Repr::Big { sign: s2, mag: m2 }) => {
                match s1.cmp(s2) {
                    Ordering::Equal => {}
                    ord => return ord,
                }
                let mag_ord = Int::mag_cmp(m1, m2);
                if *s1 < 0 {
                    mag_ord.reverse()
                } else {
                    mag_ord
                }
            }
        }
    }
}

impl Neg for Int {
    type Output = Int;
    fn neg(self) -> Int {
        match self.repr {
            Repr::Small(v) => Int::from_i128_value(-(v as i128)),
            Repr::Big { sign, mag } => Int::from_mag(-sign, mag),
        }
    }
}

impl Neg for &Int {
    type Output = Int;
    fn neg(self) -> Int {
        self.clone().neg()
    }
}

impl Add for &Int {
    type Output = Int;
    fn add(self, other: &Int) -> Int {
        // Small + small never overflows the i128 intermediate.
        if let (Repr::Small(a), Repr::Small(b)) = (&self.repr, &other.repr) {
            return Int::from_i128_value(*a as i128 + *b as i128);
        }
        let (mut abuf, mut bbuf) = ([0u64; 1], [0u64; 1]);
        let (a_sign, a_mag) = self.sign_mag(&mut abuf);
        let (b_sign, b_mag) = other.sign_mag(&mut bbuf);
        if a_sign == 0 {
            return other.clone();
        }
        if b_sign == 0 {
            return self.clone();
        }
        if a_sign == b_sign {
            Int::from_mag(a_sign, Int::mag_add(a_mag, b_mag))
        } else {
            match Int::mag_cmp(a_mag, b_mag) {
                Ordering::Equal => Int::zero(),
                Ordering::Greater => Int::from_mag(a_sign, Int::mag_sub(a_mag, b_mag)),
                Ordering::Less => Int::from_mag(b_sign, Int::mag_sub(b_mag, a_mag)),
            }
        }
    }
}

impl Sub for &Int {
    type Output = Int;
    fn sub(self, other: &Int) -> Int {
        if let (Repr::Small(a), Repr::Small(b)) = (&self.repr, &other.repr) {
            return Int::from_i128_value(*a as i128 - *b as i128);
        }
        self + &(-other)
    }
}

impl Mul for &Int {
    type Output = Int;
    fn mul(self, other: &Int) -> Int {
        // Small × small always fits the i128 intermediate.
        if let (Repr::Small(a), Repr::Small(b)) = (&self.repr, &other.repr) {
            return Int::from_i128_value(*a as i128 * *b as i128);
        }
        if self.is_zero() || other.is_zero() {
            return Int::zero();
        }
        let (mut abuf, mut bbuf) = ([0u64; 1], [0u64; 1]);
        let (a_sign, a_mag) = self.sign_mag(&mut abuf);
        let (b_sign, b_mag) = other.sign_mag(&mut bbuf);
        Int::from_mag(a_sign * b_sign, Int::mag_mul(a_mag, b_mag))
    }
}

impl Div for &Int {
    type Output = Int;
    fn div(self, other: &Int) -> Int {
        self.div_rem(other).0
    }
}

impl Rem for &Int {
    type Output = Int;
    fn rem(self, other: &Int) -> Int {
        self.div_rem(other).1
    }
}

macro_rules! forward_owned_binop {
    ($trait:ident, $method:ident) => {
        impl $trait for Int {
            type Output = Int;
            fn $method(self, other: Int) -> Int {
                (&self).$method(&other)
            }
        }
        impl $trait<&Int> for Int {
            type Output = Int;
            fn $method(self, other: &Int) -> Int {
                (&self).$method(other)
            }
        }
        impl $trait<Int> for &Int {
            type Output = Int;
            fn $method(self, other: Int) -> Int {
                self.$method(&other)
            }
        }
    };
}

forward_owned_binop!(Add, add);
forward_owned_binop!(Sub, sub);
forward_owned_binop!(Mul, mul);
forward_owned_binop!(Div, div);
forward_owned_binop!(Rem, rem);

impl AddAssign<&Int> for Int {
    fn add_assign(&mut self, other: &Int) {
        if let (Repr::Small(a), Repr::Small(b)) = (&self.repr, &other.repr) {
            if let Some(s) = a.checked_add(*b) {
                self.repr = Repr::Small(s);
                return;
            }
        }
        *self = &*self + other;
    }
}
impl AddAssign for Int {
    fn add_assign(&mut self, other: Int) {
        *self += &other;
    }
}
impl SubAssign<&Int> for Int {
    fn sub_assign(&mut self, other: &Int) {
        if let (Repr::Small(a), Repr::Small(b)) = (&self.repr, &other.repr) {
            if let Some(d) = a.checked_sub(*b) {
                self.repr = Repr::Small(d);
                return;
            }
        }
        *self = &*self - other;
    }
}
impl SubAssign for Int {
    fn sub_assign(&mut self, other: Int) {
        *self -= &other;
    }
}
impl MulAssign<&Int> for Int {
    fn mul_assign(&mut self, other: &Int) {
        if let (Repr::Small(a), Repr::Small(b)) = (&self.repr, &other.repr) {
            if let Some(p) = a.checked_mul(*b) {
                self.repr = Repr::Small(p);
                return;
            }
        }
        *self = &*self * other;
    }
}
impl MulAssign for Int {
    fn mul_assign(&mut self, other: Int) {
        *self *= &other;
    }
}

impl fmt::Display for Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.repr {
            Repr::Small(v) => write!(f, "{v}"),
            Repr::Big { .. } => {
                let mut digits = Vec::new();
                let ten = Int::from(10i64);
                let mut cur = self.abs();
                while !cur.is_zero() {
                    let (q, r) = cur.div_rem(&ten);
                    digits.push(std::char::from_digit(r.to_i64().unwrap() as u32, 10).unwrap());
                    cur = q;
                }
                if self.is_negative() {
                    write!(f, "-")?;
                }
                for d in digits.iter().rev() {
                    write!(f, "{d}")?;
                }
                Ok(())
            }
        }
    }
}

/// Error returned when parsing an [`Int`] from a malformed string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseIntError {
    message: String,
}

impl fmt::Display for ParseIntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid integer literal: {}", self.message)
    }
}

impl std::error::Error for ParseIntError {}

impl FromStr for Int {
    type Err = ParseIntError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let (neg, digits) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, s.strip_prefix('+').unwrap_or(s)),
        };
        if digits.is_empty() {
            return Err(ParseIntError {
                message: "empty string".into(),
            });
        }
        let ten = Int::from(10i64);
        let mut acc = Int::zero();
        for c in digits.chars() {
            let d = c.to_digit(10).ok_or_else(|| ParseIntError {
                message: format!("unexpected character {c:?}"),
            })?;
            acc = &(&acc * &ten) + &Int::from(d as i64);
        }
        Ok(if neg { -acc } else { acc })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basics() {
        assert!(Int::zero().is_zero());
        assert!(Int::one().is_one());
        assert_eq!(Int::from(5) + Int::from(-5), Int::zero());
        assert_eq!(Int::from(-3) * Int::from(-4), Int::from(12));
        assert_eq!(Int::from(-3) * Int::from(4), Int::from(-12));
        assert_eq!(Int::from(17) / Int::from(5), Int::from(3));
        assert_eq!(Int::from(17) % Int::from(5), Int::from(2));
        assert_eq!(Int::from(-17) / Int::from(5), Int::from(-3));
        assert_eq!(Int::from(-17) % Int::from(5), Int::from(-2));
    }

    #[test]
    fn ordering() {
        assert!(Int::from(-10) < Int::from(-2));
        assert!(Int::from(-2) < Int::from(0));
        assert!(Int::from(0) < Int::from(3));
        assert!(Int::from(1) < Int::from(i64::MAX) * Int::from(i64::MAX));
    }

    #[test]
    fn large_multiplication() {
        let a: Int = "123456789012345678901234567890".parse().unwrap();
        let b: Int = "987654321098765432109876543210".parse().unwrap();
        let p = &a * &b;
        assert_eq!(
            p.to_string(),
            "121932631137021795226185032733622923332237463801111263526900"
        );
    }

    #[test]
    fn large_division() {
        let a: Int = "121932631137021795226185032733622923332237463801111263526900"
            .parse()
            .unwrap();
        let b: Int = "987654321098765432109876543210".parse().unwrap();
        let (q, r) = a.div_rem(&b);
        assert_eq!(q.to_string(), "123456789012345678901234567890");
        assert!(r.is_zero());
    }

    #[test]
    fn display_roundtrip() {
        for s in [
            "0",
            "1",
            "-1",
            "18446744073709551616",
            "-340282366920938463463374607431768211456",
        ] {
            let v: Int = s.parse().unwrap();
            assert_eq!(v.to_string(), s);
        }
    }

    #[test]
    fn floor_ceil_division() {
        assert_eq!(Int::from(7).div_floor(&Int::from(2)), Int::from(3));
        assert_eq!(Int::from(-7).div_floor(&Int::from(2)), Int::from(-4));
        assert_eq!(Int::from(7).div_ceil(&Int::from(2)), Int::from(4));
        assert_eq!(Int::from(-7).div_ceil(&Int::from(2)), Int::from(-3));
        assert_eq!(Int::from(7).div_floor(&Int::from(-2)), Int::from(-4));
        assert_eq!(Int::from(-7).div_floor(&Int::from(-2)), Int::from(3));
    }

    #[test]
    fn pow() {
        assert_eq!(Int::from(2).pow(10), Int::from(1024));
        assert_eq!(Int::from(-3).pow(3), Int::from(-27));
        assert_eq!(Int::from(5).pow(0), Int::one());
    }

    #[test]
    fn conversions() {
        assert_eq!(Int::from(i64::MAX).to_i64(), Some(i64::MAX));
        assert_eq!(Int::from(i64::MIN).to_i64(), Some(i64::MIN));
        assert_eq!((Int::from(i64::MAX) + Int::one()).to_i64(), None);
        assert_eq!(Int::from(i128::MAX).to_i128(), Some(i128::MAX));
    }

    #[test]
    fn representation_is_canonical_at_the_i64_boundary() {
        // Everything inside [i64::MIN, i64::MAX] is inline...
        assert!(Int::from(0).is_inline());
        assert!(Int::from(i64::MAX).is_inline());
        assert!(Int::from(i64::MIN).is_inline());
        // ... the first value past either end spills over ...
        let past_max = Int::from(i64::MAX) + Int::one();
        let past_min = Int::from(i64::MIN) - Int::one();
        assert!(!past_max.is_inline());
        assert!(!past_min.is_inline());
        // ... and arithmetic that comes back in range demotes again.
        assert!((&past_max - &Int::one()).is_inline());
        assert!((&past_min + &Int::one()).is_inline());
        assert_eq!(&past_max - &Int::one(), Int::from(i64::MAX));
        assert_eq!(&past_min + &Int::one(), Int::from(i64::MIN));
        // Negation promotes/demotes across the asymmetric boundary.
        let neg_min = -Int::from(i64::MIN);
        assert!(!neg_min.is_inline());
        assert_eq!(-neg_min, Int::from(i64::MIN));
        // u64 values above i64::MAX spill over.
        assert!(!Int::from(u64::MAX).is_inline());
        assert_eq!(Int::from(u64::MAX).to_string(), u64::MAX.to_string());
    }

    #[test]
    fn inline_and_spilled_values_mix_in_arithmetic() {
        let big: Int = "340282366920938463463374607431768211456".parse().unwrap(); // 2^128
        let small = Int::from(7);
        assert_eq!(&(&big + &small) - &big, small);
        assert_eq!(&(&big * &small) / &big, small);
        assert_eq!(&(&big * &small) % &big, Int::zero());
        assert_eq!((&big - &big), Int::zero());
        assert!((&big / &small).to_i64().is_none());
        assert!(!(&big + &small).is_inline());
        assert!((&small + &small).is_inline());
    }

    #[test]
    fn hash_matches_equality_across_boundary_roundtrip() {
        use std::collections::HashSet;
        // x promoted to Big and demoted back must hash like the inline value.
        let huge = Int::from(i64::MAX) * Int::from(i64::MAX);
        let roundtrip = &(&Int::from(42) + &huge) - &huge;
        assert!(roundtrip.is_inline());
        let mut set = HashSet::new();
        set.insert(Int::from(42));
        assert!(set.contains(&roundtrip));
    }

    proptest! {
        #[test]
        fn prop_add_commutative(a in any::<i64>(), b in any::<i64>()) {
            prop_assert_eq!(Int::from(a) + Int::from(b), Int::from(b) + Int::from(a));
        }

        #[test]
        fn prop_matches_i128(a in any::<i64>(), b in any::<i64>()) {
            let (ia, ib) = (Int::from(a), Int::from(b));
            prop_assert_eq!(&ia + &ib, Int::from(a as i128 + b as i128));
            prop_assert_eq!(&ia - &ib, Int::from(a as i128 - b as i128));
            prop_assert_eq!(&ia * &ib, Int::from(a as i128 * b as i128));
        }

        #[test]
        fn prop_divrem_invariant(a in any::<i64>(), b in any::<i64>().prop_filter("nonzero", |v| *v != 0)) {
            let (ia, ib) = (Int::from(a), Int::from(b));
            let (q, r) = ia.div_rem(&ib);
            prop_assert_eq!(&(&q * &ib) + &r, ia.clone());
            prop_assert!(r.abs() < ib.abs());
        }

        #[test]
        fn prop_mul_div_roundtrip(a in any::<i64>(), b in any::<i64>().prop_filter("nonzero", |v| *v != 0)) {
            let (ia, ib) = (Int::from(a), Int::from(b));
            let p = &ia * &ib;
            prop_assert_eq!(&p / &ib, ia);
        }

        #[test]
        fn prop_parse_display_roundtrip(a in any::<i128>()) {
            let v = Int::from(a);
            let s = v.to_string();
            prop_assert_eq!(s.parse::<Int>().unwrap(), v);
        }

        #[test]
        fn prop_ordering_matches(a in any::<i64>(), b in any::<i64>()) {
            prop_assert_eq!(Int::from(a).cmp(&Int::from(b)), a.cmp(&b));
        }

        /// Small/big representation equivalence: the same arithmetic done on
        /// inline values and on the same values forced through the spill-over
        /// representation must agree for every operator.
        #[test]
        fn prop_small_big_equivalence(a in any::<i64>(), b in any::<i64>().prop_filter("nonzero", |v| *v != 0)) {
            // Scaling by 2^192 pushes any non-zero i64 into the Big
            // representation; every operator must then agree with the small
            // path on the unscaled operands (exact-scaling identities).
            let shift: Int = Int::from(2).pow(192);
            let (ia, ib) = (Int::from(a), Int::from(b));
            let (ba, bb) = (&ia * &shift, &ib * &shift);
            prop_assert_eq!(ba.is_inline(), a == 0);
            prop_assert!(!bb.is_inline());
            prop_assert_eq!(&ba + &bb, &(&ia + &ib) * &shift);
            prop_assert_eq!(&ba - &bb, &(&ia - &ib) * &shift);
            prop_assert_eq!(&ba * &ib, &(&ia * &ib) * &shift);
            prop_assert_eq!(&ba / &bb, &ia / &ib);
            prop_assert_eq!(&ba % &bb, &(&ia % &ib) * &shift);
            prop_assert_eq!(ba.cmp(&bb), ia.cmp(&ib));
            // The demotion round trip: promoted values come back inline.
            prop_assert_eq!(&ba / &shift, ia);
            prop_assert!((&ba / &shift).is_inline());
        }

        /// Promotion boundary: ops crossing i64::MAX/i64::MIN spill over with
        /// the exact mathematical value (checked against i128 arithmetic).
        #[test]
        fn prop_promotion_at_i64_boundary(delta in 0i64..1000, sub in any::<bool>()) {
            let base = if sub { i64::MIN } else { i64::MAX };
            let expected = if sub {
                base as i128 - delta as i128
            } else {
                base as i128 + delta as i128
            };
            let got = if sub {
                &Int::from(base) - &Int::from(delta)
            } else {
                &Int::from(base) + &Int::from(delta)
            };
            prop_assert_eq!(&got, &Int::from(expected));
            prop_assert_eq!(got.is_inline(), delta == 0);
            prop_assert_eq!(got.to_i128(), Some(expected));
        }
    }
}
