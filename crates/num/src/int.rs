//! Arbitrary-precision signed integers.
//!
//! Representation: sign (-1, 0, +1) plus a little-endian vector of 64-bit
//! limbs, kept normalised (no trailing zero limbs; empty magnitude iff the
//! number is zero). Algorithms are deliberately simple (schoolbook
//! multiplication, bitwise shift–subtract division): coefficient growth in
//! termination analysis stays modest, and simplicity buys confidence.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Rem, Sub, SubAssign};
use std::str::FromStr;

/// An arbitrary-precision signed integer.
///
/// ```
/// use termite_num::Int;
/// let a: Int = "123456789012345678901234567890".parse().unwrap();
/// let b = Int::from(10_i64).pow(29);
/// assert!(a > b);
/// assert_eq!((&a - &a), Int::zero());
/// ```
#[derive(Clone, Debug)]
pub struct Int {
    /// -1, 0 or +1. Zero iff `mag` is empty.
    sign: i8,
    /// Little-endian 64-bit limbs, no trailing zeros.
    mag: Vec<u64>,
}

impl Int {
    /// The integer 0.
    pub fn zero() -> Self {
        Int {
            sign: 0,
            mag: Vec::new(),
        }
    }

    /// The integer 1.
    pub fn one() -> Self {
        Int::from(1i64)
    }

    /// The integer -1.
    pub fn minus_one() -> Self {
        Int::from(-1i64)
    }

    /// Returns `true` if this integer is zero.
    pub fn is_zero(&self) -> bool {
        self.sign == 0
    }

    /// Returns `true` if this integer is one.
    pub fn is_one(&self) -> bool {
        self.sign == 1 && self.mag.len() == 1 && self.mag[0] == 1
    }

    /// Returns `true` if this integer is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.sign > 0
    }

    /// Returns `true` if this integer is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign < 0
    }

    /// Sign of the integer: -1, 0 or +1.
    pub fn signum(&self) -> i32 {
        self.sign as i32
    }

    /// Absolute value.
    pub fn abs(&self) -> Int {
        Int {
            sign: if self.sign == 0 { 0 } else { 1 },
            mag: self.mag.clone(),
        }
    }

    fn from_mag(sign: i8, mag: Vec<u64>) -> Int {
        let mut v = Int { sign, mag };
        v.normalize();
        v
    }

    fn normalize(&mut self) {
        while let Some(&0) = self.mag.last() {
            self.mag.pop();
        }
        if self.mag.is_empty() {
            self.sign = 0;
        } else if self.sign == 0 {
            self.sign = 1;
        }
    }

    /// Number of bits in the magnitude (0 for zero).
    pub fn bit_length(&self) -> usize {
        match self.mag.last() {
            None => 0,
            Some(&top) => (self.mag.len() - 1) * 64 + (64 - top.leading_zeros() as usize),
        }
    }

    fn mag_bit(&self, i: usize) -> bool {
        let limb = i / 64;
        let off = i % 64;
        limb < self.mag.len() && (self.mag[limb] >> off) & 1 == 1
    }

    fn mag_cmp(a: &[u64], b: &[u64]) -> Ordering {
        if a.len() != b.len() {
            return a.len().cmp(&b.len());
        }
        for i in (0..a.len()).rev() {
            if a[i] != b[i] {
                return a[i].cmp(&b[i]);
            }
        }
        Ordering::Equal
    }

    fn mag_add(a: &[u64], b: &[u64]) -> Vec<u64> {
        let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u128;
        for i in 0..long.len() {
            let mut s = carry + long[i] as u128;
            if i < short.len() {
                s += short[i] as u128;
            }
            out.push(s as u64);
            carry = s >> 64;
        }
        if carry > 0 {
            out.push(carry as u64);
        }
        out
    }

    /// Requires |a| >= |b|.
    fn mag_sub(a: &[u64], b: &[u64]) -> Vec<u64> {
        debug_assert!(Int::mag_cmp(a, b) != Ordering::Less);
        let mut out = Vec::with_capacity(a.len());
        let mut borrow = 0i128;
        for i in 0..a.len() {
            let mut d = a[i] as i128 - borrow;
            if i < b.len() {
                d -= b[i] as i128;
            }
            if d < 0 {
                d += 1i128 << 64;
                borrow = 1;
            } else {
                borrow = 0;
            }
            out.push(d as u64);
        }
        debug_assert_eq!(borrow, 0);
        out
    }

    fn mag_mul(a: &[u64], b: &[u64]) -> Vec<u64> {
        if a.is_empty() || b.is_empty() {
            return Vec::new();
        }
        let mut out = vec![0u64; a.len() + b.len()];
        for (i, &ai) in a.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &bj) in b.iter().enumerate() {
                let cur = out[i + j] as u128 + ai as u128 * bj as u128 + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + b.len();
            while carry > 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        out
    }

    fn mag_shl_bits(a: &[u64], bits: usize) -> Vec<u64> {
        if a.is_empty() {
            return Vec::new();
        }
        let limb_shift = bits / 64;
        let bit_shift = bits % 64;
        let mut out = vec![0u64; a.len() + limb_shift + 1];
        for (i, &x) in a.iter().enumerate() {
            out[i + limb_shift] |= x << bit_shift;
            if bit_shift != 0 {
                out[i + limb_shift + 1] |= x >> (64 - bit_shift);
            }
        }
        while let Some(&0) = out.last() {
            out.pop();
        }
        out
    }

    /// Magnitude division: returns (quotient, remainder) with remainder < divisor.
    /// Shift–subtract (restoring) division, bit by bit from the top.
    fn mag_divrem(a: &[u64], b: &[u64]) -> (Vec<u64>, Vec<u64>) {
        assert!(!b.is_empty(), "division by zero");
        if Int::mag_cmp(a, b) == Ordering::Less {
            return (Vec::new(), a.to_vec());
        }
        // Fast path: single-limb divisor.
        if b.len() == 1 {
            let d = b[0] as u128;
            let mut q = vec![0u64; a.len()];
            let mut rem: u128 = 0;
            for i in (0..a.len()).rev() {
                let cur = (rem << 64) | a[i] as u128;
                q[i] = (cur / d) as u64;
                rem = cur % d;
            }
            while let Some(&0) = q.last() {
                q.pop();
            }
            let r = if rem == 0 {
                Vec::new()
            } else {
                vec![rem as u64]
            };
            return (q, r);
        }
        let n_bits = {
            let tmp = Int {
                sign: 1,
                mag: a.to_vec(),
            };
            tmp.bit_length()
        };
        let mut quotient = vec![0u64; a.len()];
        let mut rem: Vec<u64> = Vec::new();
        let a_int = Int {
            sign: 1,
            mag: a.to_vec(),
        };
        for i in (0..n_bits).rev() {
            // rem = rem * 2 + bit_i(a)
            rem = Int::mag_shl_bits(&rem, 1);
            if a_int.mag_bit(i) {
                if rem.is_empty() {
                    rem.push(1);
                } else {
                    rem[0] |= 1;
                }
            }
            if Int::mag_cmp(&rem, b) != Ordering::Less {
                rem = Int::mag_sub(&rem, b);
                quotient[i / 64] |= 1u64 << (i % 64);
            }
        }
        while let Some(&0) = quotient.last() {
            quotient.pop();
        }
        while let Some(&0) = rem.last() {
            rem.pop();
        }
        (quotient, rem)
    }

    /// Truncated division together with the remainder (`self = q*other + r`,
    /// `|r| < |other|`, `r` has the sign of `self`).
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn div_rem(&self, other: &Int) -> (Int, Int) {
        assert!(!other.is_zero(), "division by zero");
        if self.is_zero() {
            return (Int::zero(), Int::zero());
        }
        let (qm, rm) = Int::mag_divrem(&self.mag, &other.mag);
        let q_sign = if qm.is_empty() {
            0
        } else {
            self.sign * other.sign
        };
        let r_sign = if rm.is_empty() { 0 } else { self.sign };
        (Int::from_mag(q_sign, qm), Int::from_mag(r_sign, rm))
    }

    /// Euclidean division: quotient rounded towards negative infinity.
    ///
    /// ```
    /// use termite_num::Int;
    /// assert_eq!(Int::from(-7).div_floor(&Int::from(2)), Int::from(-4));
    /// assert_eq!(Int::from(7).div_floor(&Int::from(2)), Int::from(3));
    /// ```
    pub fn div_floor(&self, other: &Int) -> Int {
        let (q, r) = self.div_rem(other);
        if !r.is_zero() && (r.is_negative() != other.is_negative()) {
            q - Int::one()
        } else {
            q
        }
    }

    /// Euclidean division: quotient rounded towards positive infinity.
    pub fn div_ceil(&self, other: &Int) -> Int {
        let (q, r) = self.div_rem(other);
        if !r.is_zero() && (r.is_negative() == other.is_negative()) {
            q + Int::one()
        } else {
            q
        }
    }

    /// Raise to a small non-negative power.
    pub fn pow(&self, mut e: u32) -> Int {
        let mut base = self.clone();
        let mut acc = Int::one();
        while e > 0 {
            if e & 1 == 1 {
                acc = &acc * &base;
            }
            base = &base * &base;
            e >>= 1;
        }
        acc
    }

    /// Convert to `i64` if it fits.
    pub fn to_i64(&self) -> Option<i64> {
        if self.mag.len() > 1 {
            return None;
        }
        if self.mag.is_empty() {
            return Some(0);
        }
        let m = self.mag[0];
        if self.sign > 0 {
            if m <= i64::MAX as u64 {
                Some(m as i64)
            } else {
                None
            }
        } else if m <= i64::MAX as u64 + 1 {
            Some(-(m as i128) as i64)
        } else {
            None
        }
    }

    /// Convert to `i128` if it fits.
    pub fn to_i128(&self) -> Option<i128> {
        if self.mag.len() > 2 {
            return None;
        }
        let mut m: u128 = 0;
        for (i, &limb) in self.mag.iter().enumerate() {
            m |= (limb as u128) << (64 * i);
        }
        if self.sign >= 0 {
            if m <= i128::MAX as u128 {
                Some(m as i128)
            } else {
                None
            }
        } else if m <= i128::MAX as u128 + 1 {
            Some((m as i128).wrapping_neg())
        } else {
            None
        }
    }

    /// Approximate conversion to `f64` (used only for reporting, never for
    /// decisions).
    pub fn to_f64(&self) -> f64 {
        let mut acc = 0.0f64;
        for &limb in self.mag.iter().rev() {
            acc = acc * 2f64.powi(64) + limb as f64;
        }
        if self.sign < 0 {
            -acc
        } else {
            acc
        }
    }
}

impl Default for Int {
    fn default() -> Self {
        Int::zero()
    }
}

impl From<i64> for Int {
    fn from(v: i64) -> Self {
        match v.cmp(&0) {
            Ordering::Equal => Int::zero(),
            Ordering::Greater => Int {
                sign: 1,
                mag: vec![v as u64],
            },
            Ordering::Less => Int {
                sign: -1,
                mag: vec![(v as i128).unsigned_abs() as u64],
            },
        }
    }
}

impl From<i32> for Int {
    fn from(v: i32) -> Self {
        Int::from(v as i64)
    }
}

impl From<u64> for Int {
    fn from(v: u64) -> Self {
        if v == 0 {
            Int::zero()
        } else {
            Int {
                sign: 1,
                mag: vec![v],
            }
        }
    }
}

impl From<usize> for Int {
    fn from(v: usize) -> Self {
        Int::from(v as u64)
    }
}

impl From<i128> for Int {
    fn from(v: i128) -> Self {
        if v == 0 {
            return Int::zero();
        }
        let sign: i8 = if v > 0 { 1 } else { -1 };
        let m = v.unsigned_abs();
        let lo = m as u64;
        let hi = (m >> 64) as u64;
        let mag = if hi == 0 { vec![lo] } else { vec![lo, hi] };
        Int { sign, mag }
    }
}

impl PartialEq for Int {
    fn eq(&self, other: &Self) -> bool {
        self.sign == other.sign && self.mag == other.mag
    }
}
impl Eq for Int {}

impl Hash for Int {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.sign.hash(state);
        self.mag.hash(state);
    }
}

impl PartialOrd for Int {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Int {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.sign.cmp(&other.sign) {
            Ordering::Equal => {}
            ord => return ord,
        }
        let mag_ord = Int::mag_cmp(&self.mag, &other.mag);
        if self.sign < 0 {
            mag_ord.reverse()
        } else {
            mag_ord
        }
    }
}

impl Neg for Int {
    type Output = Int;
    fn neg(self) -> Int {
        Int {
            sign: -self.sign,
            mag: self.mag,
        }
    }
}

impl Neg for &Int {
    type Output = Int;
    fn neg(self) -> Int {
        Int {
            sign: -self.sign,
            mag: self.mag.clone(),
        }
    }
}

impl Add for &Int {
    type Output = Int;
    fn add(self, other: &Int) -> Int {
        if self.is_zero() {
            return other.clone();
        }
        if other.is_zero() {
            return self.clone();
        }
        if self.sign == other.sign {
            Int::from_mag(self.sign, Int::mag_add(&self.mag, &other.mag))
        } else {
            match Int::mag_cmp(&self.mag, &other.mag) {
                Ordering::Equal => Int::zero(),
                Ordering::Greater => Int::from_mag(self.sign, Int::mag_sub(&self.mag, &other.mag)),
                Ordering::Less => Int::from_mag(other.sign, Int::mag_sub(&other.mag, &self.mag)),
            }
        }
    }
}

impl Sub for &Int {
    type Output = Int;
    fn sub(self, other: &Int) -> Int {
        self + &(-other)
    }
}

impl Mul for &Int {
    type Output = Int;
    fn mul(self, other: &Int) -> Int {
        if self.is_zero() || other.is_zero() {
            return Int::zero();
        }
        Int::from_mag(self.sign * other.sign, Int::mag_mul(&self.mag, &other.mag))
    }
}

impl Div for &Int {
    type Output = Int;
    fn div(self, other: &Int) -> Int {
        self.div_rem(other).0
    }
}

impl Rem for &Int {
    type Output = Int;
    fn rem(self, other: &Int) -> Int {
        self.div_rem(other).1
    }
}

macro_rules! forward_owned_binop {
    ($trait:ident, $method:ident) => {
        impl $trait for Int {
            type Output = Int;
            fn $method(self, other: Int) -> Int {
                (&self).$method(&other)
            }
        }
        impl $trait<&Int> for Int {
            type Output = Int;
            fn $method(self, other: &Int) -> Int {
                (&self).$method(other)
            }
        }
        impl $trait<Int> for &Int {
            type Output = Int;
            fn $method(self, other: Int) -> Int {
                self.$method(&other)
            }
        }
    };
}

forward_owned_binop!(Add, add);
forward_owned_binop!(Sub, sub);
forward_owned_binop!(Mul, mul);
forward_owned_binop!(Div, div);
forward_owned_binop!(Rem, rem);

impl AddAssign<&Int> for Int {
    fn add_assign(&mut self, other: &Int) {
        *self = &*self + other;
    }
}
impl AddAssign for Int {
    fn add_assign(&mut self, other: Int) {
        *self = &*self + &other;
    }
}
impl SubAssign<&Int> for Int {
    fn sub_assign(&mut self, other: &Int) {
        *self = &*self - other;
    }
}
impl SubAssign for Int {
    fn sub_assign(&mut self, other: Int) {
        *self = &*self - &other;
    }
}
impl MulAssign<&Int> for Int {
    fn mul_assign(&mut self, other: &Int) {
        *self = &*self * other;
    }
}
impl MulAssign for Int {
    fn mul_assign(&mut self, other: Int) {
        *self = &*self * &other;
    }
}

impl fmt::Display for Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut digits = Vec::new();
        let ten = Int::from(10i64);
        let mut cur = self.abs();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem(&ten);
            digits.push(std::char::from_digit(r.to_i64().unwrap() as u32, 10).unwrap());
            cur = q;
        }
        if self.sign < 0 {
            write!(f, "-")?;
        }
        for d in digits.iter().rev() {
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

/// Error returned when parsing an [`Int`] from a malformed string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseIntError {
    message: String,
}

impl fmt::Display for ParseIntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid integer literal: {}", self.message)
    }
}

impl std::error::Error for ParseIntError {}

impl FromStr for Int {
    type Err = ParseIntError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let (neg, digits) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, s.strip_prefix('+').unwrap_or(s)),
        };
        if digits.is_empty() {
            return Err(ParseIntError {
                message: "empty string".into(),
            });
        }
        let ten = Int::from(10i64);
        let mut acc = Int::zero();
        for c in digits.chars() {
            let d = c.to_digit(10).ok_or_else(|| ParseIntError {
                message: format!("unexpected character {c:?}"),
            })?;
            acc = &(&acc * &ten) + &Int::from(d as i64);
        }
        Ok(if neg { -acc } else { acc })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basics() {
        assert!(Int::zero().is_zero());
        assert!(Int::one().is_one());
        assert_eq!(Int::from(5) + Int::from(-5), Int::zero());
        assert_eq!(Int::from(-3) * Int::from(-4), Int::from(12));
        assert_eq!(Int::from(-3) * Int::from(4), Int::from(-12));
        assert_eq!(Int::from(17) / Int::from(5), Int::from(3));
        assert_eq!(Int::from(17) % Int::from(5), Int::from(2));
        assert_eq!(Int::from(-17) / Int::from(5), Int::from(-3));
        assert_eq!(Int::from(-17) % Int::from(5), Int::from(-2));
    }

    #[test]
    fn ordering() {
        assert!(Int::from(-10) < Int::from(-2));
        assert!(Int::from(-2) < Int::from(0));
        assert!(Int::from(0) < Int::from(3));
        assert!(Int::from(1) < Int::from(i64::MAX) * Int::from(i64::MAX));
    }

    #[test]
    fn large_multiplication() {
        let a: Int = "123456789012345678901234567890".parse().unwrap();
        let b: Int = "987654321098765432109876543210".parse().unwrap();
        let p = &a * &b;
        assert_eq!(
            p.to_string(),
            "121932631137021795226185032733622923332237463801111263526900"
        );
    }

    #[test]
    fn large_division() {
        let a: Int = "121932631137021795226185032733622923332237463801111263526900"
            .parse()
            .unwrap();
        let b: Int = "987654321098765432109876543210".parse().unwrap();
        let (q, r) = a.div_rem(&b);
        assert_eq!(q.to_string(), "123456789012345678901234567890");
        assert!(r.is_zero());
    }

    #[test]
    fn display_roundtrip() {
        for s in [
            "0",
            "1",
            "-1",
            "18446744073709551616",
            "-340282366920938463463374607431768211456",
        ] {
            let v: Int = s.parse().unwrap();
            assert_eq!(v.to_string(), s);
        }
    }

    #[test]
    fn floor_ceil_division() {
        assert_eq!(Int::from(7).div_floor(&Int::from(2)), Int::from(3));
        assert_eq!(Int::from(-7).div_floor(&Int::from(2)), Int::from(-4));
        assert_eq!(Int::from(7).div_ceil(&Int::from(2)), Int::from(4));
        assert_eq!(Int::from(-7).div_ceil(&Int::from(2)), Int::from(-3));
        assert_eq!(Int::from(7).div_floor(&Int::from(-2)), Int::from(-4));
        assert_eq!(Int::from(-7).div_floor(&Int::from(-2)), Int::from(3));
    }

    #[test]
    fn pow() {
        assert_eq!(Int::from(2).pow(10), Int::from(1024));
        assert_eq!(Int::from(-3).pow(3), Int::from(-27));
        assert_eq!(Int::from(5).pow(0), Int::one());
    }

    #[test]
    fn conversions() {
        assert_eq!(Int::from(i64::MAX).to_i64(), Some(i64::MAX));
        assert_eq!(Int::from(i64::MIN).to_i64(), Some(i64::MIN));
        assert_eq!((Int::from(i64::MAX) + Int::one()).to_i64(), None);
        assert_eq!(Int::from(i128::MAX).to_i128(), Some(i128::MAX));
    }

    proptest! {
        #[test]
        fn prop_add_commutative(a in any::<i64>(), b in any::<i64>()) {
            prop_assert_eq!(Int::from(a) + Int::from(b), Int::from(b) + Int::from(a));
        }

        #[test]
        fn prop_matches_i128(a in any::<i64>(), b in any::<i64>()) {
            let (ia, ib) = (Int::from(a), Int::from(b));
            prop_assert_eq!(&ia + &ib, Int::from(a as i128 + b as i128));
            prop_assert_eq!(&ia - &ib, Int::from(a as i128 - b as i128));
            prop_assert_eq!(&ia * &ib, Int::from(a as i128 * b as i128));
        }

        #[test]
        fn prop_divrem_invariant(a in any::<i64>(), b in any::<i64>().prop_filter("nonzero", |v| *v != 0)) {
            let (ia, ib) = (Int::from(a), Int::from(b));
            let (q, r) = ia.div_rem(&ib);
            prop_assert_eq!(&(&q * &ib) + &r, ia.clone());
            prop_assert!(r.abs() < ib.abs());
        }

        #[test]
        fn prop_mul_div_roundtrip(a in any::<i64>(), b in any::<i64>().prop_filter("nonzero", |v| *v != 0)) {
            let (ia, ib) = (Int::from(a), Int::from(b));
            let p = &ia * &ib;
            prop_assert_eq!(&p / &ib, ia);
        }

        #[test]
        fn prop_parse_display_roundtrip(a in any::<i128>()) {
            let v = Int::from(a);
            let s = v.to_string();
            prop_assert_eq!(s.parse::<Int>().unwrap(), v);
        }

        #[test]
        fn prop_ordering_matches(a in any::<i64>(), b in any::<i64>()) {
            prop_assert_eq!(Int::from(a).cmp(&Int::from(b)), a.cmp(&b));
        }
    }
}
