//! Exact arithmetic substrate for Termite-rs.
//!
//! The ranking-function synthesis algorithm, the exact simplex solvers and the
//! polyhedra library all require *exact* rational arithmetic: a single rounding
//! error in a Farkas certificate would invalidate a termination proof. This
//! crate provides:
//!
//! * [`Int`] — an arbitrary-precision signed integer (sign + magnitude,
//!   64-bit limbs), with schoolbook multiplication and shift–subtract
//!   division, sufficient for the coefficient sizes arising in termination
//!   analysis;
//! * [`Rational`] — an always-normalised exact rational built on [`Int`].
//!
//! Both types implement the usual operator traits, ordering, hashing,
//! parsing and formatting, so they can be used as drop-in numeric types by
//! the higher layers.
//!
//! # Examples
//!
//! ```
//! use termite_num::{Int, Rational};
//!
//! let a = Int::from(1234567890123456789_i64);
//! let b = Int::from(987654321_i64);
//! assert_eq!((&a * &b) % &b, Int::zero());
//!
//! let q = Rational::new(Int::from(6), Int::from(-4));
//! assert_eq!(q.to_string(), "-3/2");
//! ```

mod int;
mod rational;

pub use int::Int;
pub use rational::Rational;

/// Greatest common divisor of two integers (always non-negative).
///
/// ```
/// use termite_num::{gcd, Int};
/// assert_eq!(gcd(&Int::from(12), &Int::from(-18)), Int::from(6));
/// assert_eq!(gcd(&Int::zero(), &Int::zero()), Int::zero());
/// ```
pub fn gcd(a: &Int, b: &Int) -> Int {
    let mut a = a.abs();
    let mut b = b.abs();
    while !b.is_zero() {
        let r = &a % &b;
        a = b;
        b = r;
    }
    a
}

/// Least common multiple of two integers (always non-negative).
///
/// Returns zero when either argument is zero.
///
/// ```
/// use termite_num::{lcm, Int};
/// assert_eq!(lcm(&Int::from(4), &Int::from(6)), Int::from(12));
/// ```
pub fn lcm(a: &Int, b: &Int) -> Int {
    if a.is_zero() || b.is_zero() {
        return Int::zero();
    }
    let g = gcd(a, b);
    (&a.abs() / &g) * b.abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basic() {
        assert_eq!(gcd(&Int::from(48), &Int::from(36)), Int::from(12));
        assert_eq!(gcd(&Int::from(7), &Int::from(0)), Int::from(7));
        assert_eq!(gcd(&Int::from(0), &Int::from(7)), Int::from(7));
        assert_eq!(gcd(&Int::from(-48), &Int::from(36)), Int::from(12));
    }

    #[test]
    fn lcm_basic() {
        assert_eq!(lcm(&Int::from(3), &Int::from(5)), Int::from(15));
        assert_eq!(lcm(&Int::from(0), &Int::from(5)), Int::from(0));
        assert_eq!(lcm(&Int::from(-4), &Int::from(6)), Int::from(12));
    }
}
