//! Exact rationals built on [`Int`].

use crate::{gcd, Int};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

/// An exact rational number, always kept in lowest terms with a positive
/// denominator.
///
/// ```
/// use termite_num::Rational;
/// let a = Rational::from_ints(1, 3);
/// let b = Rational::from_ints(1, 6);
/// assert_eq!((a + b).to_string(), "1/2");
/// ```
#[derive(Clone, Debug)]
pub struct Rational {
    num: Int,
    den: Int,
}

impl Rational {
    /// The rational 0.
    pub fn zero() -> Self {
        Rational {
            num: Int::zero(),
            den: Int::one(),
        }
    }

    /// The rational 1.
    pub fn one() -> Self {
        Rational {
            num: Int::one(),
            den: Int::one(),
        }
    }

    /// Builds `num / den` in lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn new(num: Int, den: Int) -> Self {
        assert!(!den.is_zero(), "rational with zero denominator");
        if let (Some(n), Some(d)) = (num.to_i64(), den.to_i64()) {
            return Rational::from_i128_frac(n as i128, d as i128);
        }
        let mut r = Rational { num, den };
        r.normalize();
        r
    }

    /// Builds `num / den` from machine integers.
    pub fn from_ints(num: i64, den: i64) -> Self {
        Rational::new(Int::from(num), Int::from(den))
    }

    /// Builds the rational `n/1`.
    pub fn from_int(n: Int) -> Self {
        Rational {
            num: n,
            den: Int::one(),
        }
    }

    fn normalize(&mut self) {
        if self.den.is_negative() {
            self.num = -std::mem::take(&mut self.num);
            self.den = -std::mem::take(&mut self.den);
        }
        if self.num.is_zero() {
            self.den = Int::one();
            return;
        }
        // A denominator of 1 is already in lowest terms, and a numerator of
        // ±1 is coprime to everything: skip the gcd entirely.
        if self.den.is_one() || self.num.is_one() || self.num == Int::minus_one() {
            return;
        }
        let g = gcd(&self.num, &self.den);
        if !g.is_one() {
            self.num = &self.num / &g;
            self.den = &self.den / &g;
        }
    }

    /// Numerator and denominator as machine integers, when both fit. The
    /// gateway to the small-value fast paths: cross-multiplied `i128`
    /// arithmetic instead of heap-allocating [`Int`] operations.
    #[inline]
    fn small_parts(&self) -> Option<(i64, i64)> {
        Some((self.num.to_i64()?, self.den.to_i64()?))
    }

    /// Builds `num / den` from an `i128` cross-multiplication intermediate,
    /// reducing with machine gcd. `den` must be non-zero.
    fn from_i128_frac(mut num: i128, mut den: i128) -> Rational {
        debug_assert!(den != 0, "rational with zero denominator");
        if den < 0 {
            num = -num;
            den = -den;
        }
        if num == 0 {
            return Rational::zero();
        }
        if den != 1 && num != 1 && num != -1 {
            let g = gcd_u128(num.unsigned_abs(), den as u128) as i128;
            if g > 1 {
                num /= g;
                den /= g;
            }
        }
        Rational {
            num: Int::from(num),
            den: Int::from(den),
        }
    }

    /// Numerator (sign-carrying).
    pub fn numer(&self) -> &Int {
        &self.num
    }

    /// Denominator (always positive).
    pub fn denom(&self) -> &Int {
        &self.den
    }

    /// Returns `true` if this rational is zero.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// Returns `true` if this rational is one.
    pub fn is_one(&self) -> bool {
        self.num.is_one() && self.den.is_one()
    }

    /// Returns `true` if strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    /// Returns `true` if strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// Returns `true` if the denominator is 1.
    pub fn is_integer(&self) -> bool {
        self.den.is_one()
    }

    /// The value as an `i64`, when it is an integer that fits.
    pub fn to_i64(&self) -> Option<i64> {
        if self.den.is_one() {
            self.num.to_i64()
        } else {
            None
        }
    }

    /// Sign: -1, 0 or +1.
    pub fn signum(&self) -> i32 {
        self.num.signum()
    }

    /// Absolute value.
    pub fn abs(&self) -> Rational {
        Rational {
            num: self.num.abs(),
            den: self.den.clone(),
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the rational is zero.
    pub fn recip(&self) -> Rational {
        assert!(!self.is_zero(), "reciprocal of zero");
        Rational::new(self.den.clone(), self.num.clone())
    }

    /// Largest integer not greater than this rational.
    pub fn floor(&self) -> Int {
        self.num.div_floor(&self.den)
    }

    /// Smallest integer not smaller than this rational.
    pub fn ceil(&self) -> Int {
        self.num.div_ceil(&self.den)
    }

    /// Approximate `f64` value (reporting only).
    pub fn to_f64(&self) -> f64 {
        self.num.to_f64() / self.den.to_f64()
    }

    /// Minimum of two rationals.
    pub fn min(self, other: Rational) -> Rational {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Maximum of two rationals.
    pub fn max(self, other: Rational) -> Rational {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::zero()
    }
}

impl From<Int> for Rational {
    fn from(n: Int) -> Self {
        Rational::from_int(n)
    }
}

impl From<i64> for Rational {
    fn from(n: i64) -> Self {
        Rational::from_int(Int::from(n))
    }
}

impl From<i32> for Rational {
    fn from(n: i32) -> Self {
        Rational::from_int(Int::from(n))
    }
}

impl PartialEq for Rational {
    fn eq(&self, other: &Self) -> bool {
        self.num == other.num && self.den == other.den
    }
}
impl Eq for Rational {}

impl Hash for Rational {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.num.hash(state);
        self.den.hash(state);
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b <=> c/d  iff  a*d <=> c*b  (b, d > 0)
        if let (Some((a, b)), Some((c, d))) = (self.small_parts(), other.small_parts()) {
            return (a as i128 * d as i128).cmp(&(c as i128 * b as i128));
        }
        (&self.num * &other.den).cmp(&(&other.num * &self.den))
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}
impl Neg for &Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -(&self.num),
            den: self.den.clone(),
        }
    }
}

impl Add for &Rational {
    type Output = Rational;
    fn add(self, other: &Rational) -> Rational {
        if self.is_zero() {
            return other.clone();
        }
        if other.is_zero() {
            return self.clone();
        }
        if let (Some((a, b)), Some((c, d))) = (self.small_parts(), other.small_parts()) {
            // i64 operands cannot overflow the i128 cross-multiplication.
            return Rational::from_i128_frac(
                a as i128 * d as i128 + c as i128 * b as i128,
                b as i128 * d as i128,
            );
        }
        Rational::new(
            &(&self.num * &other.den) + &(&other.num * &self.den),
            &self.den * &other.den,
        )
    }
}

impl Sub for &Rational {
    type Output = Rational;
    fn sub(self, other: &Rational) -> Rational {
        if other.is_zero() {
            return self.clone();
        }
        if let (Some((a, b)), Some((c, d))) = (self.small_parts(), other.small_parts()) {
            return Rational::from_i128_frac(
                a as i128 * d as i128 - c as i128 * b as i128,
                b as i128 * d as i128,
            );
        }
        Rational::new(
            &(&self.num * &other.den) - &(&other.num * &self.den),
            &self.den * &other.den,
        )
    }
}

impl Mul for &Rational {
    type Output = Rational;
    fn mul(self, other: &Rational) -> Rational {
        // ±1 and 0 factors are ubiquitous in simplex tableaux.
        if self.is_zero() || other.is_zero() {
            return Rational::zero();
        }
        if self.is_one() {
            return other.clone();
        }
        if other.is_one() {
            return self.clone();
        }
        if let (Some((a, b)), Some((c, d))) = (self.small_parts(), other.small_parts()) {
            return Rational::from_i128_frac(a as i128 * c as i128, b as i128 * d as i128);
        }
        Rational::new(&self.num * &other.num, &self.den * &other.den)
    }
}

impl Div for &Rational {
    type Output = Rational;
    fn div(self, other: &Rational) -> Rational {
        assert!(!other.is_zero(), "division by zero rational");
        if self.is_zero() {
            return Rational::zero();
        }
        if other.is_one() {
            return self.clone();
        }
        if let (Some((a, b)), Some((c, d))) = (self.small_parts(), other.small_parts()) {
            return Rational::from_i128_frac(a as i128 * d as i128, b as i128 * c as i128);
        }
        Rational::new(&self.num * &other.den, &self.den * &other.num)
    }
}

macro_rules! forward_owned_binop_q {
    ($trait:ident, $method:ident) => {
        impl $trait for Rational {
            type Output = Rational;
            fn $method(self, other: Rational) -> Rational {
                (&self).$method(&other)
            }
        }
        impl $trait<&Rational> for Rational {
            type Output = Rational;
            fn $method(self, other: &Rational) -> Rational {
                (&self).$method(other)
            }
        }
        impl $trait<Rational> for &Rational {
            type Output = Rational;
            fn $method(self, other: Rational) -> Rational {
                self.$method(&other)
            }
        }
    };
}

forward_owned_binop_q!(Add, add);
forward_owned_binop_q!(Sub, sub);
forward_owned_binop_q!(Mul, mul);
forward_owned_binop_q!(Div, div);

impl AddAssign<&Rational> for Rational {
    fn add_assign(&mut self, other: &Rational) {
        *self = &*self + other;
    }
}
impl AddAssign for Rational {
    fn add_assign(&mut self, other: Rational) {
        *self = &*self + &other;
    }
}
impl SubAssign<&Rational> for Rational {
    fn sub_assign(&mut self, other: &Rational) {
        *self = &*self - other;
    }
}
impl SubAssign for Rational {
    fn sub_assign(&mut self, other: Rational) {
        *self = &*self - &other;
    }
}
impl MulAssign<&Rational> for Rational {
    fn mul_assign(&mut self, other: &Rational) {
        *self = &*self * other;
    }
}
impl MulAssign for Rational {
    fn mul_assign(&mut self, other: Rational) {
        *self = &*self * &other;
    }
}
impl DivAssign<&Rational> for Rational {
    fn div_assign(&mut self, other: &Rational) {
        *self = &*self / other;
    }
}
impl DivAssign for Rational {
    fn div_assign(&mut self, other: Rational) {
        *self = &*self / &other;
    }
}

/// Euclidean gcd on machine words (the small-path reduction).
fn gcd_u128(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

impl std::iter::Sum for Rational {
    fn sum<I: Iterator<Item = Rational>>(iter: I) -> Rational {
        iter.fold(Rational::zero(), |a, b| a + b)
    }
}

impl<'a> std::iter::Sum<&'a Rational> for Rational {
    fn sum<I: Iterator<Item = &'a Rational>>(iter: I) -> Rational {
        iter.fold(Rational::zero(), |a, b| &a + b)
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.is_one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

/// Error returned when parsing a [`Rational`] from a malformed string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRationalError {
    message: String,
}

impl fmt::Display for ParseRationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid rational literal: {}", self.message)
    }
}

impl std::error::Error for ParseRationalError {}

impl FromStr for Rational {
    type Err = ParseRationalError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let mk_err = |m: &str| ParseRationalError {
            message: m.to_string(),
        };
        match s.split_once('/') {
            None => {
                let n: Int = s.parse().map_err(|_| mk_err(s))?;
                Ok(Rational::from_int(n))
            }
            Some((n, d)) => {
                let n: Int = n.trim().parse().map_err(|_| mk_err(s))?;
                let d: Int = d.trim().parse().map_err(|_| mk_err(s))?;
                if d.is_zero() {
                    return Err(mk_err("zero denominator"));
                }
                Ok(Rational::new(n, d))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn q(n: i64, d: i64) -> Rational {
        Rational::from_ints(n, d)
    }

    #[test]
    fn normalisation() {
        assert_eq!(q(6, -4).to_string(), "-3/2");
        assert_eq!(q(0, -7), Rational::zero());
        assert_eq!(q(4, 2), Rational::from(2));
    }

    #[test]
    fn arithmetic() {
        assert_eq!(q(1, 3) + q(1, 6), q(1, 2));
        assert_eq!(q(1, 3) - q(1, 3), Rational::zero());
        assert_eq!(q(2, 3) * q(3, 4), q(1, 2));
        assert_eq!(q(2, 3) / q(4, 3), q(1, 2));
        assert_eq!(-q(1, 2), q(-1, 2));
    }

    #[test]
    fn ordering() {
        assert!(q(1, 3) < q(1, 2));
        assert!(q(-1, 2) < q(-1, 3));
        assert!(q(7, 1) > q(13, 2));
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(q(7, 2).floor(), Int::from(3));
        assert_eq!(q(7, 2).ceil(), Int::from(4));
        assert_eq!(q(-7, 2).floor(), Int::from(-4));
        assert_eq!(q(-7, 2).ceil(), Int::from(-3));
        assert_eq!(q(4, 2).floor(), Int::from(2));
        assert_eq!(q(4, 2).ceil(), Int::from(2));
    }

    #[test]
    fn parsing() {
        assert_eq!("3/4".parse::<Rational>().unwrap(), q(3, 4));
        assert_eq!("-5".parse::<Rational>().unwrap(), Rational::from(-5));
        assert_eq!(" 6 / -8 ".parse::<Rational>().unwrap(), q(-3, 4));
        assert!("1/0".parse::<Rational>().is_err());
        assert!("abc".parse::<Rational>().is_err());
    }

    #[test]
    fn recip() {
        assert_eq!(q(3, 4).recip(), q(4, 3));
        assert_eq!(q(-3, 4).recip(), q(-4, 3));
    }

    #[test]
    fn to_i64_accessor() {
        assert_eq!(q(42, 1).to_i64(), Some(42));
        assert_eq!(q(84, 2).to_i64(), Some(42));
        assert_eq!(q(1, 2).to_i64(), None);
        assert_eq!(Rational::zero().to_i64(), Some(0));
        assert!(q(42, 1).is_integer());
        assert!(!q(1, 2).is_integer());
    }

    #[test]
    fn small_path_handles_extreme_i64_operands() {
        // Cross-multiplication at the edge of the i64 range must not wrap.
        let a = Rational::new(Int::from(i64::MAX), Int::from(i64::MAX - 2));
        let b = Rational::new(Int::from(i64::MIN), Int::from(i64::MAX));
        let sum = &a + &b;
        // Reference computation through the big-int path.
        let expected = Rational::new(
            &(&Int::from(i64::MAX) * &Int::from(i64::MAX))
                + &(&Int::from(i64::MIN) * &Int::from(i64::MAX - 2)),
            &Int::from(i64::MAX - 2) * &Int::from(i64::MAX),
        );
        assert_eq!(sum, expected);
        assert_eq!(
            (&a * &b),
            Rational::new(
                &Int::from(i64::MAX) * &Int::from(i64::MIN),
                &Int::from(i64::MAX - 2) * &Int::from(i64::MAX),
            )
        );
        assert!((&a - &a).is_zero());
        assert_eq!(a.cmp(&b), std::cmp::Ordering::Greater);
    }

    #[test]
    fn mixed_small_big_operands_fall_back_correctly() {
        // One operand outside the i64 range forces the big-int path; results
        // must agree with hand-scaled identities.
        let huge = Int::from(i64::MAX) * Int::from(4); // > i64::MAX
        let big = Rational::new(huge.clone(), Int::from(3));
        let small = q(1, 3);
        assert_eq!(
            &big - &small,
            Rational::new(&huge - &Int::one(), Int::from(3))
        );
        assert_eq!(&big * &q(3, 1), Rational::from_int(huge.clone()));
        assert_eq!((&big / &big), Rational::one());
        assert!(big > small);
    }

    #[test]
    fn sum_iterator() {
        let total: Rational = (1..=4).map(|i| q(1, i)).sum();
        assert_eq!(total, q(25, 12));
    }

    proptest! {
        #[test]
        fn prop_field_axioms(a in -1000i64..1000, b in 1i64..100, c in -1000i64..1000, d in 1i64..100) {
            let x = q(a, b);
            let y = q(c, d);
            prop_assert_eq!(&x + &y, &y + &x);
            prop_assert_eq!(&x * &y, &y * &x);
            prop_assert_eq!(&(&x + &y) - &y, x.clone());
            if !y.is_zero() {
                prop_assert_eq!(&(&x * &y) / &y, x.clone());
            }
        }

        #[test]
        fn prop_distributivity(a in -100i64..100, b in 1i64..50, c in -100i64..100, d in 1i64..50, e in -100i64..100, f in 1i64..50) {
            let x = q(a, b);
            let y = q(c, d);
            let z = q(e, f);
            prop_assert_eq!(&x * &(&y + &z), &(&x * &y) + &(&x * &z));
        }

        #[test]
        fn prop_floor_le_value(a in -10000i64..10000, b in 1i64..200) {
            let x = q(a, b);
            let fl = Rational::from_int(x.floor());
            let ce = Rational::from_int(x.ceil());
            prop_assert!(fl <= x);
            prop_assert!(x <= ce);
            prop_assert!(&ce - &fl <= Rational::one());
        }

        #[test]
        fn prop_parse_display_roundtrip(a in -10000i64..10000, b in 1i64..300) {
            let x = q(a, b);
            prop_assert_eq!(x.to_string().parse::<Rational>().unwrap(), x);
        }
    }
}
