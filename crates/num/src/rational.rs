//! Exact rationals built on [`Int`].

use crate::{gcd, Int};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

/// An exact rational number, always kept in lowest terms with a positive
/// denominator.
///
/// ```
/// use termite_num::Rational;
/// let a = Rational::from_ints(1, 3);
/// let b = Rational::from_ints(1, 6);
/// assert_eq!((a + b).to_string(), "1/2");
/// ```
#[derive(Clone, Debug)]
pub struct Rational {
    num: Int,
    den: Int,
}

impl Rational {
    /// The rational 0.
    pub fn zero() -> Self {
        Rational {
            num: Int::zero(),
            den: Int::one(),
        }
    }

    /// The rational 1.
    pub fn one() -> Self {
        Rational {
            num: Int::one(),
            den: Int::one(),
        }
    }

    /// Builds `num / den` in lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn new(num: Int, den: Int) -> Self {
        assert!(!den.is_zero(), "rational with zero denominator");
        let mut r = Rational { num, den };
        r.normalize();
        r
    }

    /// Builds `num / den` from machine integers.
    pub fn from_ints(num: i64, den: i64) -> Self {
        Rational::new(Int::from(num), Int::from(den))
    }

    /// Builds the rational `n/1`.
    pub fn from_int(n: Int) -> Self {
        Rational {
            num: n,
            den: Int::one(),
        }
    }

    fn normalize(&mut self) {
        if self.den.is_negative() {
            self.num = -std::mem::take(&mut self.num);
            self.den = -std::mem::take(&mut self.den);
        }
        if self.num.is_zero() {
            self.den = Int::one();
            return;
        }
        let g = gcd(&self.num, &self.den);
        if !g.is_one() {
            self.num = &self.num / &g;
            self.den = &self.den / &g;
        }
    }

    /// Numerator (sign-carrying).
    pub fn numer(&self) -> &Int {
        &self.num
    }

    /// Denominator (always positive).
    pub fn denom(&self) -> &Int {
        &self.den
    }

    /// Returns `true` if this rational is zero.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// Returns `true` if this rational is one.
    pub fn is_one(&self) -> bool {
        self.num.is_one() && self.den.is_one()
    }

    /// Returns `true` if strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    /// Returns `true` if strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// Returns `true` if the denominator is 1.
    pub fn is_integer(&self) -> bool {
        self.den.is_one()
    }

    /// Sign: -1, 0 or +1.
    pub fn signum(&self) -> i32 {
        self.num.signum()
    }

    /// Absolute value.
    pub fn abs(&self) -> Rational {
        Rational {
            num: self.num.abs(),
            den: self.den.clone(),
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the rational is zero.
    pub fn recip(&self) -> Rational {
        assert!(!self.is_zero(), "reciprocal of zero");
        Rational::new(self.den.clone(), self.num.clone())
    }

    /// Largest integer not greater than this rational.
    pub fn floor(&self) -> Int {
        self.num.div_floor(&self.den)
    }

    /// Smallest integer not smaller than this rational.
    pub fn ceil(&self) -> Int {
        self.num.div_ceil(&self.den)
    }

    /// Approximate `f64` value (reporting only).
    pub fn to_f64(&self) -> f64 {
        self.num.to_f64() / self.den.to_f64()
    }

    /// Minimum of two rationals.
    pub fn min(self, other: Rational) -> Rational {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Maximum of two rationals.
    pub fn max(self, other: Rational) -> Rational {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::zero()
    }
}

impl From<Int> for Rational {
    fn from(n: Int) -> Self {
        Rational::from_int(n)
    }
}

impl From<i64> for Rational {
    fn from(n: i64) -> Self {
        Rational::from_int(Int::from(n))
    }
}

impl From<i32> for Rational {
    fn from(n: i32) -> Self {
        Rational::from_int(Int::from(n))
    }
}

impl PartialEq for Rational {
    fn eq(&self, other: &Self) -> bool {
        self.num == other.num && self.den == other.den
    }
}
impl Eq for Rational {}

impl Hash for Rational {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.num.hash(state);
        self.den.hash(state);
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b <=> c/d  iff  a*d <=> c*b  (b, d > 0)
        (&self.num * &other.den).cmp(&(&other.num * &self.den))
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}
impl Neg for &Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -(&self.num),
            den: self.den.clone(),
        }
    }
}

impl Add for &Rational {
    type Output = Rational;
    fn add(self, other: &Rational) -> Rational {
        Rational::new(
            &(&self.num * &other.den) + &(&other.num * &self.den),
            &self.den * &other.den,
        )
    }
}

impl Sub for &Rational {
    type Output = Rational;
    fn sub(self, other: &Rational) -> Rational {
        Rational::new(
            &(&self.num * &other.den) - &(&other.num * &self.den),
            &self.den * &other.den,
        )
    }
}

impl Mul for &Rational {
    type Output = Rational;
    fn mul(self, other: &Rational) -> Rational {
        Rational::new(&self.num * &other.num, &self.den * &other.den)
    }
}

impl Div for &Rational {
    type Output = Rational;
    fn div(self, other: &Rational) -> Rational {
        assert!(!other.is_zero(), "division by zero rational");
        Rational::new(&self.num * &other.den, &self.den * &other.num)
    }
}

macro_rules! forward_owned_binop_q {
    ($trait:ident, $method:ident) => {
        impl $trait for Rational {
            type Output = Rational;
            fn $method(self, other: Rational) -> Rational {
                (&self).$method(&other)
            }
        }
        impl $trait<&Rational> for Rational {
            type Output = Rational;
            fn $method(self, other: &Rational) -> Rational {
                (&self).$method(other)
            }
        }
        impl $trait<Rational> for &Rational {
            type Output = Rational;
            fn $method(self, other: Rational) -> Rational {
                self.$method(&other)
            }
        }
    };
}

forward_owned_binop_q!(Add, add);
forward_owned_binop_q!(Sub, sub);
forward_owned_binop_q!(Mul, mul);
forward_owned_binop_q!(Div, div);

impl AddAssign<&Rational> for Rational {
    fn add_assign(&mut self, other: &Rational) {
        *self = &*self + other;
    }
}
impl AddAssign for Rational {
    fn add_assign(&mut self, other: Rational) {
        *self = &*self + &other;
    }
}
impl SubAssign<&Rational> for Rational {
    fn sub_assign(&mut self, other: &Rational) {
        *self = &*self - other;
    }
}
impl SubAssign for Rational {
    fn sub_assign(&mut self, other: Rational) {
        *self = &*self - &other;
    }
}
impl MulAssign<&Rational> for Rational {
    fn mul_assign(&mut self, other: &Rational) {
        *self = &*self * other;
    }
}
impl MulAssign for Rational {
    fn mul_assign(&mut self, other: Rational) {
        *self = &*self * &other;
    }
}
impl DivAssign<&Rational> for Rational {
    fn div_assign(&mut self, other: &Rational) {
        *self = &*self / other;
    }
}
impl DivAssign for Rational {
    fn div_assign(&mut self, other: Rational) {
        *self = &*self / &other;
    }
}

impl std::iter::Sum for Rational {
    fn sum<I: Iterator<Item = Rational>>(iter: I) -> Rational {
        iter.fold(Rational::zero(), |a, b| a + b)
    }
}

impl<'a> std::iter::Sum<&'a Rational> for Rational {
    fn sum<I: Iterator<Item = &'a Rational>>(iter: I) -> Rational {
        iter.fold(Rational::zero(), |a, b| &a + b)
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.is_one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

/// Error returned when parsing a [`Rational`] from a malformed string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRationalError {
    message: String,
}

impl fmt::Display for ParseRationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid rational literal: {}", self.message)
    }
}

impl std::error::Error for ParseRationalError {}

impl FromStr for Rational {
    type Err = ParseRationalError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let mk_err = |m: &str| ParseRationalError {
            message: m.to_string(),
        };
        match s.split_once('/') {
            None => {
                let n: Int = s.parse().map_err(|_| mk_err(s))?;
                Ok(Rational::from_int(n))
            }
            Some((n, d)) => {
                let n: Int = n.trim().parse().map_err(|_| mk_err(s))?;
                let d: Int = d.trim().parse().map_err(|_| mk_err(s))?;
                if d.is_zero() {
                    return Err(mk_err("zero denominator"));
                }
                Ok(Rational::new(n, d))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn q(n: i64, d: i64) -> Rational {
        Rational::from_ints(n, d)
    }

    #[test]
    fn normalisation() {
        assert_eq!(q(6, -4).to_string(), "-3/2");
        assert_eq!(q(0, -7), Rational::zero());
        assert_eq!(q(4, 2), Rational::from(2));
    }

    #[test]
    fn arithmetic() {
        assert_eq!(q(1, 3) + q(1, 6), q(1, 2));
        assert_eq!(q(1, 3) - q(1, 3), Rational::zero());
        assert_eq!(q(2, 3) * q(3, 4), q(1, 2));
        assert_eq!(q(2, 3) / q(4, 3), q(1, 2));
        assert_eq!(-q(1, 2), q(-1, 2));
    }

    #[test]
    fn ordering() {
        assert!(q(1, 3) < q(1, 2));
        assert!(q(-1, 2) < q(-1, 3));
        assert!(q(7, 1) > q(13, 2));
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(q(7, 2).floor(), Int::from(3));
        assert_eq!(q(7, 2).ceil(), Int::from(4));
        assert_eq!(q(-7, 2).floor(), Int::from(-4));
        assert_eq!(q(-7, 2).ceil(), Int::from(-3));
        assert_eq!(q(4, 2).floor(), Int::from(2));
        assert_eq!(q(4, 2).ceil(), Int::from(2));
    }

    #[test]
    fn parsing() {
        assert_eq!("3/4".parse::<Rational>().unwrap(), q(3, 4));
        assert_eq!("-5".parse::<Rational>().unwrap(), Rational::from(-5));
        assert_eq!(" 6 / -8 ".parse::<Rational>().unwrap(), q(-3, 4));
        assert!("1/0".parse::<Rational>().is_err());
        assert!("abc".parse::<Rational>().is_err());
    }

    #[test]
    fn recip() {
        assert_eq!(q(3, 4).recip(), q(4, 3));
        assert_eq!(q(-3, 4).recip(), q(-4, 3));
    }

    #[test]
    fn sum_iterator() {
        let total: Rational = (1..=4).map(|i| q(1, i)).sum();
        assert_eq!(total, q(25, 12));
    }

    proptest! {
        #[test]
        fn prop_field_axioms(a in -1000i64..1000, b in 1i64..100, c in -1000i64..1000, d in 1i64..100) {
            let x = q(a, b);
            let y = q(c, d);
            prop_assert_eq!(&x + &y, &y + &x);
            prop_assert_eq!(&x * &y, &y * &x);
            prop_assert_eq!(&(&x + &y) - &y, x.clone());
            if !y.is_zero() {
                prop_assert_eq!(&(&x * &y) / &y, x.clone());
            }
        }

        #[test]
        fn prop_distributivity(a in -100i64..100, b in 1i64..50, c in -100i64..100, d in 1i64..50, e in -100i64..100, f in 1i64..50) {
            let x = q(a, b);
            let y = q(c, d);
            let z = q(e, f);
            prop_assert_eq!(&x * &(&y + &z), &(&x * &y) + &(&x * &z));
        }

        #[test]
        fn prop_floor_le_value(a in -10000i64..10000, b in 1i64..200) {
            let x = q(a, b);
            let fl = Rational::from_int(x.floor());
            let ce = Rational::from_int(x.ceil());
            prop_assert!(fl <= x);
            prop_assert!(x <= ce);
            prop_assert!(&ce - &fl <= Rational::one());
        }

        #[test]
        fn prop_parse_display_roundtrip(a in -10000i64..10000, b in 1i64..300) {
            let x = q(a, b);
            prop_assert_eq!(x.to_string().parse::<Rational>().unwrap(), x);
        }
    }
}
