//! A client of the NDJSON analysis service, in process: pipes two programs
//! through [`termite::driver::serve`] and shows how a client re-associates
//! the *unordered* response stream with its requests by id.
//!
//! The service streams each verdict the moment it lands. With two workers,
//! the cheap countdown below routinely overtakes the 2⁶-path multipath loop
//! submitted before it — a client must therefore never assume response order
//! and always key on the `id` field. This example asserts exactly that
//! discipline: both responses are collected into a map, and the assertions
//! hold whichever order the lines arrived in.
//!
//! Run with `cargo run --release --example serve_client`.

use std::io::Cursor;
use termite::driver::json::Json;
use termite::driver::{serve, ServeConfig};

fn main() {
    // 2^6 paths through the loop body: measurable work for the prover.
    let mut multipath = String::from("var x;\nassume x >= 0;\nwhile (x >= 0) {\n");
    for _ in 0..6 {
        multipath.push_str("if (nondet()) { x = x - 1; } else { x = x - 2; }\n");
    }
    multipath.push('}');

    let requests = format!(
        "{}\n{}\n",
        Json::object([
            ("id", Json::String("slow-multipath".into())),
            ("program", Json::String(multipath)),
        ]),
        Json::object([
            ("id", Json::String("fast-countdown".into())),
            (
                "program",
                Json::String("var x; while (x > 0) { x = x - 1; }".into()),
            ),
        ]),
    );

    let config = ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    };
    let mut responses = Vec::new();
    let summary = serve(Cursor::new(requests), &mut responses, &config, None)
        .expect("the in-memory transport cannot fail");
    assert_eq!(summary.ok, 2, "every job answers exactly once");

    // The client discipline: never index responses by arrival position —
    // parse each line and key on `id`.
    let text = String::from_utf8(responses).expect("responses are UTF-8 JSON lines");
    let mut by_id = std::collections::BTreeMap::new();
    for (position, line) in text.lines().enumerate() {
        let doc = Json::parse(line).expect("every response line is one JSON document");
        let id = doc.get("id").and_then(Json::as_str).unwrap().to_string();
        println!(
            "arrival {position}: id={id} verdict={}",
            doc.get("verdict").and_then(Json::as_str).unwrap_or("-")
        );
        assert!(
            by_id.insert(id, doc).is_none(),
            "ids are unique across the stream"
        );
    }
    for id in ["slow-multipath", "fast-countdown"] {
        let doc = by_id.get(id).expect("a response exists for every request");
        assert_eq!(doc.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(
            doc.get("verdict").and_then(Json::as_str),
            Some("terminates"),
            "{id} must be proved terminating"
        );
    }
    println!("ok: both verdicts recovered regardless of arrival order");
}
