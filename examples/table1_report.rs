//! Regenerates Table 1 of the paper: for every benchmark suite and every
//! engine, the number of programs proved terminating, the total synthesis
//! time (front-end and invariant generation excluded) and the average LP
//! instance size.
//!
//! Run with `cargo run --example table1_report` (add `--release` for timings
//! comparable to the paper's).

use termite::core::Engine;
use termite::suite::SuiteId;
use termite_bench::{format_table, prepare_suite, run_suite};

fn main() {
    let mut rows = Vec::new();
    for suite_id in SuiteId::all() {
        eprintln!("preparing {} ...", suite_id.name());
        let prepared = prepare_suite(suite_id);
        for engine in [Engine::Termite, Engine::Eager, Engine::Heuristic] {
            eprintln!("  running {engine:?} ...");
            let row = run_suite(suite_id, &prepared, engine);
            if !row.unproved.is_empty() {
                eprintln!("    not proved: {}", row.unproved.join(", "));
            }
            rows.push(row);
        }
    }
    println!("\n=== Table 1 (reproduced) ===\n");
    println!("{}", format_table(&rows));
}
