//! Multi-control-point synthesis (Example 4 / Section 6 of the paper):
//! a program with two nested loops, analysed over the cut-set formed by the
//! two loop headers, with the invariants computed by the polyhedral abstract
//! interpreter.
//!
//! Run with `cargo run --example nested_loops`.

use termite::core::{prove_termination, AnalysisOptions, Engine};
use termite::invariants::{location_invariants, InvariantOptions};
use termite::ir::parse_program;

fn main() {
    let source = r#"
        var i, j;
        i = 0;
        while (i < 5) {
            j = 0;
            while (i > 2 && j <= 9) {
                j = j + 1;
            }
            i = i + 1;
        }
    "#;
    let program = parse_program(source).expect("the nested-loop program parses");

    // Show the supporting invariants (the role played by Aspic/Pagai in the
    // original toolchain).
    let invariants = location_invariants(&program, &InvariantOptions::default());
    for (k, inv) in invariants.iter().enumerate() {
        println!("invariant at cut point {k}: {inv}");
    }

    // Prove termination with the default (Termite) engine and with the eager
    // baseline, and compare the LP sizes.
    for engine in [Engine::Termite, Engine::Eager] {
        let report = prove_termination(&program, &AnalysisOptions::with_engine(engine));
        println!(
            "[{engine:?}] proved: {} | dimension: {} | avg LP size: ({:.1}, {:.1})",
            report.proved(),
            report
                .ranking_function()
                .map(|r| r.dimension())
                .unwrap_or(0),
            report.stats.lp_rows_avg,
            report.stats.lp_cols_avg,
        );
        if let Some(rf) = report.ranking_function() {
            println!("{rf}");
        }
        assert!(
            report.proved(),
            "nested counted loops must be proved terminating"
        );
    }
}
