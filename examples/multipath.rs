//! The motivating scalability scenario (Listing 1 / §10): a loop made of `t`
//! successive if-then-else tests has `2^t` paths. Termite's lazy,
//! counterexample-guided constraint generation keeps the LP tiny, while the
//! eager (Rank-style) baseline pays for every path.
//!
//! Run with `cargo run --example multipath`.

use termite::core::{prove_transition_system, AnalysisOptions, Engine};
use termite::invariants::{location_invariants, InvariantOptions};
use termite::suite::generators::multipath_loop;

fn main() {
    println!(
        "{:>3} {:>8} | {:>22} | {:>22}",
        "t", "paths", "Termite  (l, c, ms)", "Eager  (l, c, ms)"
    );
    for t in 1..=6usize {
        let program = multipath_loop(t);
        let ts = program.transition_system();
        let invariants = location_invariants(&program, &InvariantOptions::default());
        let mut cells = Vec::new();
        for engine in [Engine::Termite, Engine::Eager] {
            let report =
                prove_transition_system(&ts, &invariants, &AnalysisOptions::with_engine(engine));
            assert!(
                report.proved(),
                "multipath loops are terminating ({engine:?}, t = {t})"
            );
            cells.push(format!(
                "{:>6.1} {:>6.1} {:>7.1}",
                report.stats.lp_rows_avg, report.stats.lp_cols_avg, report.stats.synthesis_millis
            ));
        }
        println!("{:>3} {:>8} | {} | {}", t, 1usize << t, cells[0], cells[1]);
    }
}
