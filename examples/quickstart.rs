//! Quickstart: prove termination of Example 1 of the paper and print the
//! synthesised ranking function (expected: ρ(x, y) = y + 1, dimension 1).
//!
//! Run with `cargo run --example quickstart`.

use termite::prelude::*;

fn main() {
    let source = r#"
        var x, y;
        assume x == 5 && y == 10;
        while (true) {
            choice {
                assume x <= 10 && y >= 0;
                x = x + 1;
                y = y - 1;
            } or {
                assume x >= 0 && y >= 0;
                x = x - 1;
                y = y - 1;
            }
        }
    "#;
    let program = parse_program(source).expect("the quickstart program parses");
    let report = prove_termination(&program, &AnalysisOptions::default());
    println!("{report}");
    println!(
        "synthesis: {:.2} ms, {} SMT queries, {} LP instances of average size ({:.1}, {:.1})",
        report.stats.synthesis_millis,
        report.stats.smt_queries,
        report.stats.lp_instances,
        report.stats.lp_rows_avg,
        report.stats.lp_cols_avg,
    );
    assert!(
        report.proved(),
        "Example 1 of the paper must be proved terminating"
    );
}
