//! # Termite-rs
//!
//! A Rust reproduction of *“Synthesis of ranking functions using extremal
//! counterexamples”* (Gonnord, Monniaux, Radanne — PLDI 2015), i.e. the
//! **Termite** termination analyser, together with every substrate it relies
//! on (exact arithmetic, LP, SAT, SMT with optimization, polyhedra, a small
//! imperative front-end and a polyhedral invariant generator).
//!
//! This facade crate re-exports the individual workspace crates under stable
//! module names so that downstream users can depend on a single crate.
//!
//! ## Quickstart
//!
//! ```
//! use termite::prelude::*;
//!
//! // Example 1 of the paper: two transitions decreasing y.
//! let src = r#"
//!     var x, y;
//!     assume x == 5 && y == 10;
//!     while (true) {
//!         choice {
//!             assume x <= 10 && y >= 0; x = x + 1; y = y - 1;
//!         } or {
//!             assume x >= 0 && y >= 0; x = x - 1; y = y - 1;
//!         }
//!     }
//! "#;
//! let program = parse_program(src).expect("parse");
//! let report = prove_termination(&program, &AnalysisOptions::default());
//! assert!(report.proved());
//! ```
pub use termite_core as core;
pub use termite_driver as driver;
pub use termite_invariants as invariants;
pub use termite_ir as ir;
pub use termite_linalg as linalg;
pub use termite_lp as lp;
pub use termite_num as num;
pub use termite_obs as obs;
pub use termite_polyhedra as polyhedra;
pub use termite_sat as sat;
pub use termite_smt as smt;
pub use termite_suite as suite;

/// Convenience prelude re-exporting the most commonly used items.
pub mod prelude {
    pub use termite_core::{
        prove_termination, AnalysisOptions, Engine, RankingFunction, TerminationReport,
        UnknownReason, Verdict,
    };
    pub use termite_ir::{parse_program, Program};
    pub use termite_num::{Int, Rational};
}
